#pragma once

#include "common/result.h"
#include "common/rng.h"

/// \file response.h
/// \brief Human/device response behaviour, including incentives.
///
/// The paper motivates CrAQR with exactly this unpredictability: a human's
/// "reply could be unpredictably delayed for several reasons: he/she is not
/// interested in responding at this moment, he/she thinks that the
/// incentive offered ... is not enough, or he/she has moved". Section VI
/// lists incentive mechanisms as the first planned extension. This model
/// makes the response probability a logistic function of the offered
/// incentive and draws log-normal response delays.

namespace craqr {
namespace sensing {

/// \brief Response behaviour parameters for one attribute kind.
struct ResponseBehavior {
  /// Logit of the response probability at zero incentive. Device-sensed
  /// attributes use a large positive bias (devices almost always answer);
  /// human-sensed attributes are typically negative (humans often decline
  /// without incentive).
  double base_logit = 2.0;
  /// Additional logit per unit of incentive offered.
  double incentive_weight = 0.0;
  /// Log-normal response delay parameters (minutes): median delay
  /// exp(delay_mu).
  double delay_mu = -2.0;
  double delay_sigma = 0.5;
};

/// \brief Samples whether and when a sensor answers a request.
class ResponseModel {
 public:
  /// Validating factory; requires delay_sigma >= 0 and finite parameters.
  static Result<ResponseModel> Make(const ResponseBehavior& behavior);

  /// Probability of responding given the offered incentive:
  /// `sigmoid(base_logit + incentive_weight * incentive + personal_bias)`.
  /// `personal_bias` expresses per-sensor heterogeneity.
  double ResponseProbability(double incentive, double personal_bias) const;

  /// Draws whether the sensor responds.
  bool WillRespond(Rng* rng, double incentive, double personal_bias) const;

  /// Draws the response delay in minutes.
  double ResponseDelay(Rng* rng) const;

  /// The behaviour parameters.
  const ResponseBehavior& behavior() const { return behavior_; }

  /// Canned behaviour for device-sensed attributes: near-certain, fast.
  static ResponseBehavior DeviceBehavior();

  /// Canned behaviour for human-sensed attributes: incentive-sensitive,
  /// slow and noisy.
  static ResponseBehavior HumanBehavior();

 private:
  explicit ResponseModel(const ResponseBehavior& behavior)
      : behavior_(behavior) {}

  ResponseBehavior behavior_;
};

}  // namespace sensing
}  // namespace craqr
