#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "pointprocess/intensity.h"
#include "sensing/mobility.h"

/// \file population.h
/// \brief The population of m mobile sensors s_1..s_m in region R
/// (paper Section II).

namespace craqr {
namespace sensing {

/// \brief How initial sensor positions are drawn.
enum class PlacementKind {
  /// Uniform over the region.
  kUniform,
  /// Rejection-sampled from a spatial intensity (hotspot placement) — the
  /// skewed crowd distribution the paper's introduction describes.
  kIntensity,
};

/// \brief Population construction parameters.
struct PopulationConfig {
  /// The region R all sensors live in.
  geom::Rect region;
  /// Number of mobile sensors m.
  std::size_t num_sensors = 100;
  /// Placement of initial positions.
  PlacementKind placement = PlacementKind::kUniform;
  /// Spatial placement density; required when placement == kIntensity
  /// (evaluated at t = 0).
  pp::IntensityPtr placement_intensity;
  /// Mobility prototype cloned for every sensor; nullptr = static sensors.
  const MobilityModel* mobility_prototype = nullptr;
  /// Stddev of per-sensor responsiveness bias (logit scale); models
  /// heterogeneous willingness to participate.
  double responsiveness_sigma = 0.5;
};

/// \brief One mobile sensor.
struct Sensor {
  std::uint64_t id = 0;
  geom::SpacePoint position;
  /// Per-sensor additive logit bias for response probability.
  double responsiveness_bias = 0.0;
  /// Per-sensor mobility state.
  std::unique_ptr<MobilityModel> mobility;
};

/// \brief Owns and advances the mobile-sensor population.
class SensorPopulation {
 public:
  /// Validating factory; see PopulationConfig. Consumes randomness from
  /// `rng` for placement and heterogeneity.
  static Result<SensorPopulation> Make(const PopulationConfig& config,
                                       Rng* rng);

  /// Number of sensors m.
  std::size_t size() const { return sensors_.size(); }

  /// The region R.
  const geom::Rect& region() const { return region_; }

  /// Sensor accessor; index < size().
  const Sensor& sensor(std::size_t index) const { return sensors_[index]; }

  /// Moves every sensor forward by `dt` minutes.
  void Advance(Rng* rng, double dt);

  /// Indices of sensors currently inside `rect`.
  std::vector<std::size_t> SensorsIn(const geom::Rect& rect) const;

  /// Count of sensors currently inside `rect`.
  std::size_t CountIn(const geom::Rect& rect) const;

 private:
  SensorPopulation(geom::Rect region, std::vector<Sensor> sensors)
      : region_(region), sensors_(std::move(sensors)) {}

  geom::Rect region_;
  std::vector<Sensor> sensors_;
};

}  // namespace sensing
}  // namespace craqr
