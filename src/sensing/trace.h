#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/rect.h"
#include "ops/tuple.h"
#include "sensing/world.h"

/// \file trace.h
/// \brief Recording and replaying crowdsensed tuple traces.
///
/// The paper's evaluation substrate (a live smartphone crowd, e.g. the
/// OpenSense deployment of reference [1]) is not distributable; traces
/// are. This module serialises crowdsensed tuples to a simple CSV format,
/// and provides a MobileSensorNetwork implementation that answers
/// acquisition requests from a recorded trace instead of a live simulator
/// — so CrAQR runs can be captured once and replayed bit-identically, or
/// driven from externally collected data.
///
/// CSV schema (one tuple per line, header optional):
///   id,attribute,t,x,y,sensor_id,type,value
/// where `type` is one of n/b/i/d/s (null, bool, int64, double, string)
/// and `value` is empty for n, 0/1 for b, and unquoted otherwise (strings
/// must not contain commas or newlines).

namespace craqr {
namespace sensing {

/// \brief Serialises tuples as CSV into `os` (with header).
Status WriteTrace(const std::vector<ops::Tuple>& tuples, std::ostream* os);

/// \brief Parses a CSV trace (header line optional).
Result<std::vector<ops::Tuple>> ReadTrace(std::istream* is);

/// \brief Convenience: WriteTrace to a file path.
Status WriteTraceFile(const std::vector<ops::Tuple>& tuples,
                      const std::string& path);

/// \brief Convenience: ReadTrace from a file path.
Result<std::vector<ops::Tuple>> ReadTraceFile(const std::string& path);

/// \brief A MobileSensorNetwork that answers acquisition requests from a
/// recorded trace.
///
/// Tuples are kept sorted by time. An acquisition request at time `now`
/// for attribute A over region R consumes up to `count` still-unconsumed
/// trace tuples with `t in (now, now + response_spread + horizon]`,
/// attribute A and position in R, mimicking the latency envelope of the
/// live crowd. Each trace tuple is served at most once (a human answers a
/// question once).
/// \brief Replay tuning for TraceReplayNetwork.
struct TraceReplayOptions {
  /// How far past `now + response_spread` a response may arrive and still
  /// be matched to a request (minutes).
  double horizon = 1.0;
};

class TraceReplayNetwork final : public MobileSensorNetwork {
 public:
  /// Alias kept at namespace scope so it can default-construct in
  /// signatures.
  using Options = TraceReplayOptions;

  /// Creates a replay network; the trace may be unsorted (it is sorted on
  /// construction). `region` bounds AvailableSensors estimates.
  static Result<TraceReplayNetwork> Make(
      std::vector<ops::Tuple> trace, const geom::Rect& region,
      const TraceReplayOptions& options = TraceReplayOptions());

  Result<std::vector<ops::Tuple>> SendRequests(
      const AcquisitionRequest& request) override;

  /// Distinct sensors that produced still-unconsumed tuples in `region`.
  std::size_t AvailableSensors(const geom::Rect& region) const override;

  /// Tuples not yet served.
  std::size_t remaining() const { return remaining_; }

  /// Total tuples served so far.
  std::uint64_t served() const { return served_; }

 private:
  TraceReplayNetwork(std::vector<ops::Tuple> trace, const geom::Rect& region,
                     const Options& options);

  std::vector<ops::Tuple> trace_;  // time-sorted
  std::vector<bool> consumed_;
  geom::Rect region_;
  Options options_;
  std::size_t remaining_ = 0;
  std::uint64_t served_ = 0;
};

}  // namespace sensing
}  // namespace craqr
