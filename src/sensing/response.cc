#include "sensing/response.h"

#include <cmath>

namespace craqr {
namespace sensing {

Result<ResponseModel> ResponseModel::Make(const ResponseBehavior& behavior) {
  if (!std::isfinite(behavior.base_logit) ||
      !std::isfinite(behavior.incentive_weight) ||
      !std::isfinite(behavior.delay_mu)) {
    return Status::InvalidArgument("response behaviour must be finite");
  }
  if (!(behavior.delay_sigma >= 0.0)) {
    return Status::InvalidArgument("delay sigma must be >= 0");
  }
  return ResponseModel(behavior);
}

double ResponseModel::ResponseProbability(double incentive,
                                          double personal_bias) const {
  const double logit = behavior_.base_logit +
                       behavior_.incentive_weight * incentive + personal_bias;
  return 1.0 / (1.0 + std::exp(-logit));
}

bool ResponseModel::WillRespond(Rng* rng, double incentive,
                                double personal_bias) const {
  return rng->Bernoulli(ResponseProbability(incentive, personal_bias));
}

double ResponseModel::ResponseDelay(Rng* rng) const {
  return rng->LogNormal(behavior_.delay_mu, behavior_.delay_sigma);
}

ResponseBehavior ResponseModel::DeviceBehavior() {
  ResponseBehavior behavior;
  behavior.base_logit = 3.0;        // ~95% respond
  behavior.incentive_weight = 0.0;  // devices don't take money
  behavior.delay_mu = -3.0;         // median ~0.05 min
  behavior.delay_sigma = 0.3;
  return behavior;
}

ResponseBehavior ResponseModel::HumanBehavior() {
  ResponseBehavior behavior;
  behavior.base_logit = -0.5;      // ~38% respond unincentivised
  behavior.incentive_weight = 1.5; // incentives move the needle
  behavior.delay_mu = 0.0;         // median 1 min
  behavior.delay_sigma = 0.8;
  return behavior;
}

}  // namespace sensing
}  // namespace craqr
