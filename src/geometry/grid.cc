#include "geometry/grid.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace craqr {
namespace geom {

std::string CellIndex::ToString() const {
  std::ostringstream os;
  os << "(" << q << "," << r << ")";
  return os.str();
}

Grid::Grid(Rect region, std::uint32_t side)
    : region_(region),
      side_(side),
      cell_width_(region.Width() / static_cast<double>(side)),
      cell_height_(region.Height() / static_cast<double>(side)) {}

Result<Grid> Grid::Make(const Rect& region, std::uint32_t h) {
  if (region.IsEmpty()) {
    return Status::InvalidArgument("grid region must have positive area");
  }
  if (h == 0) {
    return Status::InvalidArgument("grid granularity h must be >= 1");
  }
  const auto side =
      static_cast<std::uint32_t>(std::llround(std::sqrt(static_cast<double>(h))));
  if (side * side != h) {
    std::ostringstream msg;
    msg << "grid granularity h=" << h
        << " must be a perfect square (the region is partitioned into a "
           "sqrt(h) x sqrt(h) grid)";
    return Status::InvalidArgument(msg.str());
  }
  return Grid(region, side);
}

Rect Grid::CellRect(const CellIndex& index) const {
  const double x0 = region_.x_min() + index.q * cell_width_;
  const double y0 = region_.y_min() + index.r * cell_height_;
  return Rect(x0, y0, x0 + cell_width_, y0 + cell_height_);
}

double Grid::CellArea() const { return cell_width_ * cell_height_; }

std::optional<CellIndex> Grid::CellContaining(double x, double y) const {
  if (!region_.Contains(x, y)) {
    return std::nullopt;
  }
  auto q = static_cast<std::uint32_t>((x - region_.x_min()) / cell_width_);
  auto r = static_cast<std::uint32_t>((y - region_.y_min()) / cell_height_);
  // Guard against floating-point landing exactly on the far edge.
  q = std::min(q, side_ - 1);
  r = std::min(r, side_ - 1);
  return CellIndex{q, r};
}

void Grid::FillFlatCells(Span<const SpaceTimePoint> points, std::uint32_t* out,
                         std::uint32_t invalid_value) const {
  const double x0 = region_.x_min(), x1 = region_.x_max();
  const double y0 = region_.y_min(), y1 = region_.y_max();
  const double cw = cell_width_, ch = cell_height_;
  const std::uint32_t side = side_;
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = points[i].x;
    const double y = points[i].y;
    // Same half-open test as Rect::Contains, combined without
    // short-circuiting so the row has no data-dependent branch.
    const bool valid = (x >= x0) & (x < x1) & (y >= y0) & (y < y1);
    // The conversions below are defined only for in-region coordinates;
    // out-of-region (or NaN) rows select 0.0 first, and their result is
    // discarded by the final select.
    const double fx = valid ? (x - x0) / cw : 0.0;
    const double fy = valid ? (y - y0) / ch : 0.0;
    std::uint32_t q = static_cast<std::uint32_t>(fx);
    std::uint32_t r = static_cast<std::uint32_t>(fy);
    q = q < side - 1 ? q : side - 1;  // far-edge clamp, as CellContaining
    r = r < side - 1 ? r : side - 1;
    out[i] = valid ? q * side + r : invalid_value;
  }
}

Result<std::vector<CellOverlap>> Grid::Overlaps(
    const Rect& query_region) const {
  const auto clipped = region_.Intersection(query_region);
  if (!clipped.has_value()) {
    return Status::InvalidArgument("query region " + query_region.ToString() +
                                   " does not intersect the grid region " +
                                   region_.ToString());
  }
  // Index range of candidate cells.
  const auto clamp_cell = [this](double v, double origin, double size) {
    const auto idx = static_cast<std::int64_t>(std::floor((v - origin) / size));
    return static_cast<std::uint32_t>(
        std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(side_) - 1));
  };
  const std::uint32_t q_lo =
      clamp_cell(clipped->x_min(), region_.x_min(), cell_width_);
  const std::uint32_t q_hi =
      clamp_cell(std::nexttoward(clipped->x_max(), clipped->x_min()),
                 region_.x_min(), cell_width_);
  const std::uint32_t r_lo =
      clamp_cell(clipped->y_min(), region_.y_min(), cell_height_);
  const std::uint32_t r_hi =
      clamp_cell(std::nexttoward(clipped->y_max(), clipped->y_min()),
                 region_.y_min(), cell_height_);

  std::vector<CellOverlap> overlaps;
  const double cell_area = CellArea();
  for (std::uint32_t q = q_lo; q <= q_hi; ++q) {
    for (std::uint32_t r = r_lo; r <= r_hi; ++r) {
      const CellIndex index{q, r};
      const Rect cell = CellRect(index);
      const auto overlap = cell.Intersection(*clipped);
      if (!overlap.has_value()) {
        continue;
      }
      const double fraction = overlap->Area() / cell_area;
      if (fraction <= 0.0) {
        continue;
      }
      overlaps.push_back(CellOverlap{
          index, *overlap, fraction,
          /*covers_cell=*/fraction >= 1.0 - 1e-9});
    }
  }
  if (overlaps.empty()) {
    return Status::InvalidArgument(
        "query region has zero-area overlap with every grid cell");
  }
  return overlaps;
}

Status Grid::ValidateQueryRegion(const Rect& query_region) const {
  if (query_region.IsEmpty()) {
    return Status::InvalidArgument("query region must have positive area");
  }
  const double min_area = CellArea();
  if (query_region.Area() + 1e-12 < min_area) {
    std::ostringstream msg;
    msg << "query region area " << query_region.Area()
        << " km^2 is below the grid-cell area " << min_area
        << " km^2 (a single-attribute query should cover at least one "
           "cell's area; paper Section IV)";
    return Status::InvalidArgument(msg.str());
  }
  return Status::OK();
}

}  // namespace geom
}  // namespace craqr
