#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "geometry/point.h"

/// \file rect.h
/// \brief Axis-aligned rectangles and the region algebra needed by the
/// PMAT Partition and Union operators (paper Section IV-B-1).

namespace craqr {
namespace geom {

/// \brief A half-open axis-aligned rectangle [x_min, x_max) x [y_min, y_max)
/// in kilometres.
///
/// Half-open semantics make grid cells tile a region without double-counting
/// boundary tuples, matching the Partition operator's requirement that its
/// output regions be disjoint.
class Rect {
 public:
  /// Constructs the empty rectangle at the origin.
  Rect() = default;

  /// Constructs a rectangle from its corner coordinates without validation;
  /// prefer Make() in fallible contexts.
  Rect(double x_min, double y_min, double x_max, double y_max)
      : x_min_(x_min), y_min_(y_min), x_max_(x_max), y_max_(y_max) {}

  /// Validating factory: requires x_min < x_max and y_min < y_max.
  static Result<Rect> Make(double x_min, double y_min, double x_max,
                           double y_max);

  double x_min() const { return x_min_; }
  double y_min() const { return y_min_; }
  double x_max() const { return x_max_; }
  double y_max() const { return y_max_; }

  /// Width along x (km).
  double Width() const { return x_max_ - x_min_; }

  /// Height along y (km).
  double Height() const { return y_max_ - y_min_; }

  /// Area in km^2; 0 for degenerate rectangles. Paper's `area(.)`.
  double Area() const;

  /// True when the rectangle has zero area.
  bool IsEmpty() const { return x_max_ <= x_min_ || y_max_ <= y_min_; }

  /// True when (x, y) lies inside the half-open extent.
  /// Half-open membership test; inline because the batch-native
  /// Partition/Union sweeps call it once per tuple.
  bool Contains(double x, double y) const {
    return x >= x_min_ && x < x_max_ && y >= y_min_ && y < y_max_;
  }

  /// True when the point lies inside the half-open extent.
  bool Contains(const SpacePoint& p) const { return Contains(p.x, p.y); }

  /// \brief Branch-free containment sweep over a space-time point column:
  /// `out[i] = Contains(points[i].x, points[i].y)` as a 0/1 byte. The
  /// four bounds compares combine with non-short-circuiting `&`, so the
  /// loop has no data-dependent branches and auto-vectorizes — this is
  /// the Partition/Union batch kernel. Edge semantics are identical to
  /// `Contains` (half-open; asserted in tests/ops_vectorized_test.cc).
  /// `out` must hold `points.size()` bytes.
  void ContainsMask(Span<const SpaceTimePoint> points,
                    std::uint8_t* out) const;

  /// \brief Accumulating variant: ORs the containment byte into `out[i]`
  /// instead of storing it. Union's membership sweep folds its input
  /// regions into one "inside any region" mask with repeated calls.
  void ContainsMaskOr(Span<const SpaceTimePoint> points,
                      std::uint8_t* out) const;

  /// True when `other` is fully inside this rectangle (closed comparison on
  /// the max edges so a rectangle contains itself).
  bool ContainsRect(const Rect& other) const;

  /// The geometric centre.
  SpacePoint Center() const;

  /// Intersection with `other`; std::nullopt when the overlap has zero
  /// area.
  std::optional<Rect> Intersection(const Rect& other) const;

  /// Area of the overlap with `other` (0 when disjoint).
  double OverlapArea(const Rect& other) const;

  /// True when the interiors are disjoint.
  bool IsDisjoint(const Rect& other) const {
    return OverlapArea(other) == 0.0;
  }

  /// \brief True when `other` can be unioned with this rectangle under the
  /// paper's Union-operator rule: the rectangles must be adjacent and share
  /// a full common side of equal length.
  bool IsUnionCompatible(const Rect& other, double tol = 1e-9) const;

  /// \brief The union rectangle when IsUnionCompatible(); error otherwise.
  Result<Rect> UnionWith(const Rect& other, double tol = 1e-9) const;

  /// Debug representation, e.g. "[0,0;2,3)".
  std::string ToString() const;

  bool operator==(const Rect& o) const {
    return x_min_ == o.x_min_ && y_min_ == o.y_min_ && x_max_ == o.x_max_ &&
           y_max_ == o.y_max_;
  }

  /// \brief Decomposes `outer \ inner` into at most four disjoint
  /// rectangles (left/right strips and top/bottom caps). Used by the
  /// fabricator's Partition placement to carve a query's overlap out of a
  /// grid cell. Returns an empty vector when `inner` covers `outer`;
  /// returns `{outer}` when they are disjoint.
  static std::vector<Rect> Subtract(const Rect& outer, const Rect& inner);

 private:
  double x_min_ = 0.0;
  double y_min_ = 0.0;
  double x_max_ = 0.0;
  double y_max_ = 0.0;
};

}  // namespace geom
}  // namespace craqr
