#include "geometry/rect.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace craqr {
namespace geom {

Result<Rect> Rect::Make(double x_min, double y_min, double x_max,
                        double y_max) {
  if (!(x_min < x_max) || !(y_min < y_max)) {
    std::ostringstream msg;
    msg << "degenerate rectangle [" << x_min << "," << y_min << ";" << x_max
        << "," << y_max << ")";
    return Status::InvalidArgument(msg.str());
  }
  return Rect(x_min, y_min, x_max, y_max);
}

double Rect::Area() const {
  if (IsEmpty()) {
    return 0.0;
  }
  return Width() * Height();
}

void Rect::ContainsMask(Span<const SpaceTimePoint> points,
                        std::uint8_t* out) const {
  const double x0 = x_min_, x1 = x_max_, y0 = y_min_, y1 = y_max_;
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = points[i].x;
    const double y = points[i].y;
    out[i] = static_cast<std::uint8_t>((x >= x0) & (x < x1) & (y >= y0) &
                                       (y < y1));
  }
}

void Rect::ContainsMaskOr(Span<const SpaceTimePoint> points,
                          std::uint8_t* out) const {
  const double x0 = x_min_, x1 = x_max_, y0 = y_min_, y1 = y_max_;
  const std::size_t n = points.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = points[i].x;
    const double y = points[i].y;
    out[i] |= static_cast<std::uint8_t>((x >= x0) & (x < x1) & (y >= y0) &
                                        (y < y1));
  }
}

bool Rect::ContainsRect(const Rect& other) const {
  return other.x_min_ >= x_min_ && other.x_max_ <= x_max_ &&
         other.y_min_ >= y_min_ && other.y_max_ <= y_max_;
}

SpacePoint Rect::Center() const {
  return SpacePoint{(x_min_ + x_max_) / 2.0, (y_min_ + y_max_) / 2.0};
}

std::optional<Rect> Rect::Intersection(const Rect& other) const {
  const double x_lo = std::max(x_min_, other.x_min_);
  const double y_lo = std::max(y_min_, other.y_min_);
  const double x_hi = std::min(x_max_, other.x_max_);
  const double y_hi = std::min(y_max_, other.y_max_);
  if (x_lo >= x_hi || y_lo >= y_hi) {
    return std::nullopt;
  }
  return Rect(x_lo, y_lo, x_hi, y_hi);
}

double Rect::OverlapArea(const Rect& other) const {
  const auto overlap = Intersection(other);
  return overlap.has_value() ? overlap->Area() : 0.0;
}

bool Rect::IsUnionCompatible(const Rect& other, double tol) const {
  const auto near = [tol](double a, double b) {
    return std::fabs(a - b) <= tol;
  };
  // Horizontally adjacent: share the full vertical side.
  const bool same_y_extent =
      near(y_min_, other.y_min_) && near(y_max_, other.y_max_);
  if (same_y_extent &&
      (near(x_max_, other.x_min_) || near(other.x_max_, x_min_))) {
    return true;
  }
  // Vertically adjacent: share the full horizontal side.
  const bool same_x_extent =
      near(x_min_, other.x_min_) && near(x_max_, other.x_max_);
  if (same_x_extent &&
      (near(y_max_, other.y_min_) || near(other.y_max_, y_min_))) {
    return true;
  }
  return false;
}

Result<Rect> Rect::UnionWith(const Rect& other, double tol) const {
  if (!IsUnionCompatible(other, tol)) {
    return Status::FailedPrecondition(
        "union requires adjacent rectangles with a common side of equal "
        "length: " +
        ToString() + " vs " + other.ToString());
  }
  return Rect(std::min(x_min_, other.x_min_), std::min(y_min_, other.y_min_),
              std::max(x_max_, other.x_max_), std::max(y_max_, other.y_max_));
}

std::vector<Rect> Rect::Subtract(const Rect& outer, const Rect& inner) {
  const auto clipped = outer.Intersection(inner);
  if (!clipped.has_value()) {
    return {outer};
  }
  const Rect& hole = *clipped;
  std::vector<Rect> pieces;
  // Left strip.
  if (hole.x_min() > outer.x_min()) {
    pieces.emplace_back(outer.x_min(), outer.y_min(), hole.x_min(),
                        outer.y_max());
  }
  // Right strip.
  if (hole.x_max() < outer.x_max()) {
    pieces.emplace_back(hole.x_max(), outer.y_min(), outer.x_max(),
                        outer.y_max());
  }
  // Bottom cap (between the strips).
  if (hole.y_min() > outer.y_min()) {
    pieces.emplace_back(hole.x_min(), outer.y_min(), hole.x_max(),
                        hole.y_min());
  }
  // Top cap (between the strips).
  if (hole.y_max() < outer.y_max()) {
    pieces.emplace_back(hole.x_min(), hole.y_max(), hole.x_max(),
                        outer.y_max());
  }
  return pieces;
}

std::string Rect::ToString() const {
  std::ostringstream os;
  os << "[" << x_min_ << "," << y_min_ << ";" << x_max_ << "," << y_max_
     << ")";
  return os.str();
}

}  // namespace geom
}  // namespace craqr
