#pragma once

/// \file point.h
/// \brief Space and space-time point types.
///
/// CrAQR follows the paper's conventions: 2-D space (x, y) in kilometres
/// plus time t in minutes; a crowdsensed tuple's coordinates form a
/// 3-D point (t, x, y).

namespace craqr {
namespace geom {

/// \brief A 2-D spatial location (kilometres).
struct SpacePoint {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const SpacePoint& o) const { return x == o.x && y == o.y; }
};

/// \brief A 3-D space-time point (t in minutes, x/y in kilometres) — the
/// coordinate part of a crowdsensed tuple and the support of an MDPP.
struct SpaceTimePoint {
  double t = 0.0;
  double x = 0.0;
  double y = 0.0;

  bool operator==(const SpaceTimePoint& o) const {
    return t == o.t && x == o.x && y == o.y;
  }

  /// The spatial projection (x, y).
  SpacePoint Spatial() const { return SpacePoint{x, y}; }
};

}  // namespace geom
}  // namespace craqr
