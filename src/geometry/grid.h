#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "geometry/rect.h"

/// \file grid.h
/// \brief The paper's logical sqrt(h) x sqrt(h) grid over the region R
/// (Section IV): cell addressing, point-to-cell mapping, and query-region
/// overlap computation.

namespace craqr {
namespace geom {

/// \brief Grid-cell coordinates (q, r); the paper's R_(q,r). Zero-based.
struct CellIndex {
  std::uint32_t q = 0;
  std::uint32_t r = 0;

  bool operator==(const CellIndex& o) const { return q == o.q && r == o.r; }

  /// Debug representation "(q,r)".
  std::string ToString() const;
};

/// \brief Hash functor so CellIndex can key the fabricator's hashmap
/// (paper Section V "a hashmap is constructed where the keys ... are the
/// xy-coordinates of grid cells").
struct CellIndexHash {
  std::size_t operator()(const CellIndex& c) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(c.q) << 32) | c.r);
  }
};

/// \brief The overlap of a query region with one grid cell.
struct CellOverlap {
  CellIndex cell;
  /// The intersection rectangle (clipped to the cell).
  Rect region;
  /// overlap area / cell area, in (0, 1].
  double fraction = 0.0;
  /// True when the query region covers the whole cell (no Partition
  /// operator needed for this cell).
  bool covers_cell = false;
};

/// \brief Uniform logical grid over a region.
///
/// `h` is the paper's user-defined granularity parameter: the region is
/// partitioned into a sqrt(h) x sqrt(h) grid, so `h` must be a perfect
/// square. The partitioning is logical — only cells touched by queries are
/// ever materialized by the fabricator.
class Grid {
 public:
  /// Creates a grid of `h` cells (perfect square >= 1) over `region`.
  static Result<Grid> Make(const Rect& region, std::uint32_t h);

  /// The full region R.
  const Rect& region() const { return region_; }

  /// Cells per side, i.e. sqrt(h).
  std::uint32_t CellsPerSide() const { return side_; }

  /// Total number of cells h.
  std::uint32_t NumCells() const { return side_ * side_; }

  /// Geometry of cell (q, r). Requires q, r < CellsPerSide().
  Rect CellRect(const CellIndex& index) const;

  /// Area of one cell (all cells are equal size; paper Section IV-A).
  double CellArea() const;

  /// The cell containing (x, y); std::nullopt when outside the region.
  std::optional<CellIndex> CellContaining(double x, double y) const;

  /// Flat row-major index of a cell: `q * CellsPerSide() + r`, in
  /// `[0, NumCells())`. The key the histogram routers' dense lookup
  /// tables are built over.
  std::uint32_t FlatIndex(const CellIndex& index) const {
    return index.q * side_ + index.r;
  }

  /// \brief Column sweep of CellContaining: writes the flat cell index of
  /// every point to `out`, or `invalid_value` for points outside the
  /// region. Classification is bit-identical to CellContaining (same
  /// half-open region test, same division, same far-edge clamp), and the
  /// loop is branch-free — the select of `invalid_value` if-converts —
  /// so the routers' per-row cell resolution auto-vectorizes. `out` must
  /// hold `points.size()` entries.
  void FillFlatCells(Span<const SpaceTimePoint> points, std::uint32_t* out,
                     std::uint32_t invalid_value) const;

  /// \brief All cells with non-zero overlap with `query_region`, with the
  /// clipped rectangles and overlap fractions (paper Section V "Query
  /// Insertions": "we compute the amount of overlap that it has with each
  /// grid cell").
  ///
  /// Returns an error when the query region does not intersect the grid
  /// region at all.
  Result<std::vector<CellOverlap>> Overlaps(const Rect& query_region) const;

  /// \brief Validates the paper's minimum-query-size rule: "A
  /// single-attribute query should be on a region with area at least
  /// area(R_(q,r))".
  Status ValidateQueryRegion(const Rect& query_region) const;

 private:
  Grid(Rect region, std::uint32_t side);

  Rect region_;
  std::uint32_t side_ = 1;
  double cell_width_ = 0.0;
  double cell_height_ = 0.0;
};

}  // namespace geom
}  // namespace craqr
