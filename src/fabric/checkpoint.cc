#include <algorithm>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/state_io.h"
#include "fabric/fabricator.h"
#include "ops/state_serde.h"

/// \file checkpoint.cc
/// \brief StreamFabricator::SaveState / RestoreState — the fabric half of
/// the runtime's epoch-barrier checkpoint (runtime/sharded_fabricator.cc).
///
/// The serializer walks queries and cells in a deterministic order
/// (queries ascending by local id; cells ascending by flat index; chains
/// ascending by attribute; thins, carve-outs and taps in chain position
/// order — the same order ExtractCell uses), so equal fabricator states
/// produce equal blobs. The deserializer is the from-bytes sibling of
/// AdoptCell: it re-creates each operator through its validating factory
/// with a placeholder RNG, then overwrites the full mutable state
/// (RNG phase, buffers, counters) from the blob.

namespace craqr {
namespace fabric {

namespace {

/// Bumped whenever the blob layout changes; a mismatch means the snapshot
/// was written by a different build of the serializer. Version 2: string
/// payloads by value (re-interned on restore) instead of ValueId handles.
constexpr std::uint32_t kFabricStateVersion = 2;

}  // namespace

Status StreamFabricator::SaveState(std::string* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("SaveState needs an output string");
  }
  StateWriter w;
  w.set_value_pool(config_.value_pool);
  w.WriteU32(kFabricStateVersion);

  // Query records, ascending by local id.
  std::vector<query::QueryId> qids;
  qids.reserve(queries_.size());
  for (const auto& [qid, qs] : queries_) {
    (void)qs;
    qids.push_back(qid);
  }
  std::sort(qids.begin(), qids.end());
  w.WriteU64(qids.size());
  for (const query::QueryId qid : qids) {
    const QueryState& qs = queries_.at(qid);
    if (qs.stream.monitor != nullptr || qs.merge_head != qs.stream.sink) {
      return Status::Unimplemented(
          "checkpoint supports partial-delivery fabricators only (query " +
          std::to_string(qid) + " owns a full merge stage)");
    }
    w.WriteU64(qid);
    w.WriteU32(qs.stream.attribute);
    ops::WriteRect(w, qs.stream.region);
    w.WriteDouble(qs.stream.rate);
    ops::WriteOperatorCounters(w, *qs.stream.sink);
  }

  w.WriteU64(tuples_routed_);
  w.WriteU64(tuples_unrouted_);

  // Cell topologies, ascending by flat index; chains ascending by
  // attribute (the ExtractCell order).
  std::vector<std::pair<std::uint32_t, geom::CellIndex>> cell_order;
  cell_order.reserve(cells_.size());
  for (const auto& [index, cell] : cells_) {
    (void)cell;
    cell_order.push_back({grid_.FlatIndex(index), index});
  }
  std::sort(cell_order.begin(), cell_order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.WriteU64(cell_order.size());
  for (const auto& [flat, index] : cell_order) {
    (void)flat;
    const Cell& cell = *cells_.at(index);
    w.WriteU32(index.q);
    w.WriteU32(index.r);
    std::vector<ops::AttributeId> attrs;
    attrs.reserve(cell.chains.size());
    for (const auto& [attribute, chain] : cell.chains) {
      (void)chain;
      attrs.push_back(attribute);
    }
    std::sort(attrs.begin(), attrs.end());
    w.WriteU64(attrs.size());
    for (const ops::AttributeId attribute : attrs) {
      const Chain& chain = cell.chains.at(attribute);
      if (!chain.inbox.empty()) {
        return Status::FailedPrecondition(
            "checkpoint requires a batch boundary: chain inbox of cell " +
            index.ToString() + " is not drained");
      }
      w.WriteU32(attribute);
      w.WriteDouble(chain.f_target);
      w.WriteU64(chain.op_seq);
      w.WriteString(chain.flatten->name());
      chain.flatten->SaveState(w);
      w.WriteU64(chain.thins.size());
      for (const ThinNode& node : chain.thins) {
        w.WriteString(node.op->name());
        w.WriteDouble(node.op->input_rate());
        w.WriteDouble(node.out_rate);
        node.op->SaveState(w);
        // Shared carve-outs below this T.
        w.WriteU64(node.partitions.size());
        for (const SharedPartition& entry : node.partitions) {
          w.WriteU64(entry.signature);
          ops::WriteRect(w, entry.region);
          w.WriteString(entry.op->name());
          entry.op->SaveState(w);
          w.WriteString(entry.splitter->name());
          ops::WriteOperatorCounters(w, *entry.splitter);
          w.WriteU64(entry.sharers.size());
          for (const query::QueryId sharer : entry.sharers) {
            w.WriteU64(sharer);
          }
        }
        // Tap records, in tap_queries (insertion) order. The unshared
        // carve-out P lives on no chain list, so it is serialized inline
        // with its tap.
        w.WriteU64(node.tap_queries.size());
        for (const query::QueryId qid : node.tap_queries) {
          const auto query_it = queries_.find(qid);
          if (query_it == queries_.end()) {
            return Status::Internal("cell " + index.ToString() +
                                    " taps dead query " + std::to_string(qid));
          }
          const Tap* tap = nullptr;
          for (const Tap& candidate : query_it->second.taps) {
            if (candidate.cell == index) {
              tap = &candidate;
              break;
            }
          }
          if (tap == nullptr) {
            return Status::Internal("query " + std::to_string(qid) +
                                    " has no tap record for cell " +
                                    index.ToString());
          }
          w.WriteU64(qid);
          w.WriteBool(tap->covers_cell);
          ops::WriteRect(w, tap->overlap);
          w.WriteBool(tap->shared);
          if (!tap->covers_cell && !tap->shared) {
            w.WriteString(tap->partition->name());
            tap->partition->SaveState(w);
          }
        }
      }
    }
  }

  *out = w.TakeBytes();
  return Status::OK();
}

Status StreamFabricator::RestoreState(
    const std::string& bytes, const DeliveryFactory& make_delivery,
    std::unordered_map<query::QueryId, query::QueryId>* id_map_out) {
  if (!queries_.empty() || !cells_.empty()) {
    return Status::FailedPrecondition(
        "RestoreState requires a fresh fabricator (no live queries or "
        "cells)");
  }
  if (!make_delivery) {
    return Status::InvalidArgument("RestoreState needs a delivery factory");
  }
  StateReader r(bytes);
  r.set_value_pool(config_.value_pool);
  std::uint32_t version = 0;
  CRAQR_RETURN_NOT_OK(r.ReadU32(&version));
  if (version != kFabricStateVersion) {
    return Status::InvalidArgument(
        "fabric snapshot version mismatch: have " + std::to_string(version) +
        ", expected " + std::to_string(kFabricStateVersion));
  }

  // Re-insert every query as a delivery shell; taps arrive with the cells.
  std::unordered_map<query::QueryId, query::QueryId> id_map;
  std::uint64_t num_queries = 0;
  CRAQR_RETURN_NOT_OK(r.ReadU64(&num_queries));
  for (std::uint64_t i = 0; i < num_queries; ++i) {
    std::uint64_t old_id = 0;
    std::uint32_t attribute = 0;
    geom::Rect region;
    double rate = 0.0;
    CRAQR_RETURN_NOT_OK(r.ReadU64(&old_id));
    CRAQR_RETURN_NOT_OK(r.ReadU32(&attribute));
    CRAQR_RETURN_NOT_OK(ops::ReadRect(r, &region));
    CRAQR_RETURN_NOT_OK(r.ReadDouble(&rate));
    ops::OperatorStats sink_stats;
    CRAQR_RETURN_NOT_OK(r.ReadU64(&sink_stats.tuples_in));
    CRAQR_RETURN_NOT_OK(r.ReadU64(&sink_stats.tuples_out));
    ops::SinkOperator::BatchCallback on_deliver = make_delivery(old_id);
    if (!on_deliver) {
      return Status::InvalidArgument(
          "delivery factory returned no callback for snapshot query " +
          std::to_string(old_id));
    }
    CRAQR_ASSIGN_OR_RETURN(
        QueryStream handle,
        InsertQueryShell(attribute, region, rate, std::move(on_deliver)));
    handle.sink->RestoreStats(sink_stats);
    id_map.emplace(old_id, handle.id);
  }

  CRAQR_RETURN_NOT_OK(r.ReadU64(&tuples_routed_));
  CRAQR_RETURN_NOT_OK(r.ReadU64(&tuples_unrouted_));

  const auto map_id = [&id_map](query::QueryId old_id,
                                query::QueryId* new_id) {
    const auto mapped = id_map.find(old_id);
    if (mapped == id_map.end()) {
      return Status::OutOfRange("snapshot references unknown query " +
                                std::to_string(old_id));
    }
    *new_id = mapped->second;
    return Status::OK();
  };

  std::uint64_t num_cells = 0;
  CRAQR_RETURN_NOT_OK(r.ReadU64(&num_cells));
  for (std::uint64_t c = 0; c < num_cells; ++c) {
    geom::CellIndex index;
    CRAQR_RETURN_NOT_OK(r.ReadU32(&index.q));
    CRAQR_RETURN_NOT_OK(r.ReadU32(&index.r));
    if (index.q >= grid_.CellsPerSide() || index.r >= grid_.CellsPerSide()) {
      return Status::OutOfRange("snapshot cell " + index.ToString() +
                                " is outside the grid");
    }
    Cell* cell = GetOrCreateCell(index);
    const geom::Rect cell_rect = grid_.CellRect(index);
    std::uint64_t num_chains = 0;
    CRAQR_RETURN_NOT_OK(r.ReadU64(&num_chains));
    for (std::uint64_t ci = 0; ci < num_chains; ++ci) {
      std::uint32_t attribute = 0;
      CRAQR_RETURN_NOT_OK(r.ReadU32(&attribute));
      Chain chain;
      CRAQR_RETURN_NOT_OK(r.ReadDouble(&chain.f_target));
      CRAQR_RETURN_NOT_OK(r.ReadU64(&chain.op_seq));
      chain.flat_cell = grid_.FlatIndex(index);
      std::string flatten_name;
      CRAQR_RETURN_NOT_OK(r.ReadString(&flatten_name));
      // Reconstruct the F exactly as GetOrCreateChain would, then
      // overwrite its mutable state. The placeholder seed is irrelevant —
      // the restored RNG phase replaces it.
      ops::FlattenConfig fc;
      fc.region = cell_rect;
      fc.target_rate = chain.f_target;
      fc.target_mode = ops::FlattenTargetMode::kRatePerVolume;
      fc.mode = config_.flatten_mode;
      fc.batch_size = config_.flatten_batch_size;
      fc.min_rate = config_.flatten_min_rate;
      fc.min_batch_for_estimation = config_.flatten_min_batch_for_estimation;
      CRAQR_ASSIGN_OR_RETURN(
          auto flatten_owned,
          ops::FlattenOperator::Make(flatten_name, fc, Rng(0)));
      chain.flatten = cell->pipeline.Add(std::move(flatten_owned));
      CRAQR_RETURN_NOT_OK(chain.flatten->RestoreState(r));

      std::uint64_t num_thins = 0;
      CRAQR_RETURN_NOT_OK(r.ReadU64(&num_thins));
      for (std::uint64_t ti = 0; ti < num_thins; ++ti) {
        std::string thin_name;
        double input_rate = 0.0;
        double out_rate = 0.0;
        CRAQR_RETURN_NOT_OK(r.ReadString(&thin_name));
        CRAQR_RETURN_NOT_OK(r.ReadDouble(&input_rate));
        CRAQR_RETURN_NOT_OK(r.ReadDouble(&out_rate));
        CRAQR_ASSIGN_OR_RETURN(
            auto thin_owned,
            ops::ThinOperator::Make(thin_name, input_rate, out_rate, Rng(0)));
        ops::ThinOperator* thin = cell->pipeline.Add(std::move(thin_owned));
        CRAQR_RETURN_NOT_OK(thin->RestoreState(r));
        ops::Operator* prev =
            chain.thins.empty()
                ? static_cast<ops::Operator*>(chain.flatten)
                : static_cast<ops::Operator*>(chain.thins.back().op);
        prev->AddOutput(thin);
        ThinNode node;
        node.op = thin;
        node.out_rate = out_rate;

        std::uint64_t num_partitions = 0;
        CRAQR_RETURN_NOT_OK(r.ReadU64(&num_partitions));
        for (std::uint64_t pi = 0; pi < num_partitions; ++pi) {
          SharedPartition entry;
          CRAQR_RETURN_NOT_OK(r.ReadU64(&entry.signature));
          CRAQR_RETURN_NOT_OK(ops::ReadRect(r, &entry.region));
          std::string p_name;
          CRAQR_RETURN_NOT_OK(r.ReadString(&p_name));
          std::vector<geom::Rect> regions;
          regions.push_back(entry.region);
          for (const auto& piece :
               geom::Rect::Subtract(cell_rect, entry.region)) {
            regions.push_back(piece);
          }
          CRAQR_ASSIGN_OR_RETURN(
              auto partition_owned,
              ops::PartitionOperator::Make(p_name, std::move(regions)));
          entry.op = cell->pipeline.Add(std::move(partition_owned));
          CRAQR_RETURN_NOT_OK(entry.op->RestoreState(r));
          std::string splitter_name;
          CRAQR_RETURN_NOT_OK(r.ReadString(&splitter_name));
          CRAQR_ASSIGN_OR_RETURN(
              auto splitter_owned,
              ops::PassThroughOperator::Make(splitter_name));
          entry.splitter = cell->pipeline.Add(std::move(splitter_owned));
          CRAQR_RETURN_NOT_OK(ops::ReadOperatorCounters(r, entry.splitter));
          thin->AddOutput(entry.op);
          entry.op->AddOutput(entry.splitter);  // port 0: the overlap
          std::uint64_t num_sharers = 0;
          CRAQR_RETURN_NOT_OK(r.ReadU64(&num_sharers));
          for (std::uint64_t si = 0; si < num_sharers; ++si) {
            std::uint64_t old_sharer = 0;
            CRAQR_RETURN_NOT_OK(r.ReadU64(&old_sharer));
            query::QueryId sharer = 0;
            CRAQR_RETURN_NOT_OK(map_id(old_sharer, &sharer));
            entry.sharers.push_back(sharer);
          }
          node.partitions.push_back(std::move(entry));
        }

        std::uint64_t num_taps = 0;
        CRAQR_RETURN_NOT_OK(r.ReadU64(&num_taps));
        for (std::uint64_t tpi = 0; tpi < num_taps; ++tpi) {
          std::uint64_t old_qid = 0;
          CRAQR_RETURN_NOT_OK(r.ReadU64(&old_qid));
          query::QueryId qid = 0;
          CRAQR_RETURN_NOT_OK(map_id(old_qid, &qid));
          QueryState& tqs = queries_.at(qid);
          Tap tap;
          tap.cell = index;
          CRAQR_RETURN_NOT_OK(r.ReadBool(&tap.covers_cell));
          CRAQR_RETURN_NOT_OK(ops::ReadRect(r, &tap.overlap));
          CRAQR_RETURN_NOT_OK(r.ReadBool(&tap.shared));
          if (tap.covers_cell) {
            thin->AddOutput(tqs.merge_head);
          } else if (tap.shared) {
            SharedPartition* entry = nullptr;
            for (SharedPartition& candidate : node.partitions) {
              if (candidate.region == tap.overlap) {
                entry = &candidate;
                break;
              }
            }
            if (entry == nullptr) {
              return Status::OutOfRange(
                  "snapshot shared tap of query " + std::to_string(old_qid) +
                  " has no matching carve-out record");
            }
            entry->splitter->AddOutput(tqs.merge_head);
            tap.partition = entry->op;
          } else {
            std::string p_name;
            CRAQR_RETURN_NOT_OK(r.ReadString(&p_name));
            std::vector<geom::Rect> regions;
            regions.push_back(tap.overlap);
            for (const auto& piece :
                 geom::Rect::Subtract(cell_rect, tap.overlap)) {
              regions.push_back(piece);
            }
            CRAQR_ASSIGN_OR_RETURN(
                auto partition_owned,
                ops::PartitionOperator::Make(p_name, std::move(regions)));
            ops::PartitionOperator* partition =
                cell->pipeline.Add(std::move(partition_owned));
            CRAQR_RETURN_NOT_OK(partition->RestoreState(r));
            thin->AddOutput(partition);
            partition->AddOutput(tqs.merge_head);  // port 0: the overlap
            tap.partition = partition;
          }
          node.tap_queries.push_back(qid);
          tqs.taps.push_back(tap);
        }
        chain.thins.push_back(std::move(node));
      }
      auto emplaced = cell->chains.emplace(attribute, std::move(chain));
      if (!emplaced.second) {
        return Status::OutOfRange("snapshot repeats chain attribute " +
                                  std::to_string(attribute) + " in cell " +
                                  index.ToString());
      }
      BindChainReportCallback(&emplaced.first->second, attribute, index);
    }
  }
  if (r.remaining() != 0) {
    return Status::OutOfRange("fabric snapshot has " +
                              std::to_string(r.remaining()) +
                              " trailing bytes");
  }
  // Restored chains enter the route LUT through the next full rebuild.
  route_dirty_ = true;
  if (id_map_out != nullptr) {
    *id_map_out = std::move(id_map);
  }
  return Status::OK();
}

}  // namespace fabric
}  // namespace craqr
