#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geometry/grid.h"
#include "ops/extras.h"
#include "ops/flatten.h"
#include "ops/partition.h"
#include "ops/pipeline.h"
#include "ops/thin.h"
#include "ops/union_op.h"
#include "query/query.h"

namespace craqr {
namespace obs {
class Counter;      // obs/metrics.h — sharing telemetry counters
class CounterBank;  // obs/metrics.h — per-cell routed-tuple telemetry
}  // namespace obs
}  // namespace craqr

/// \file fabricator.h
/// \brief The Crowdsensed Stream Fabricator (paper Sections IV-B and V).
///
/// The fabricator maintains a hashmap from grid cells to execution
/// topologies of PMAT operators and simultaneously fabricates the
/// crowdsensed data streams of many acquisitional queries:
///
///  - **map**: each incoming tuple is routed to the topology of the grid
///    cell containing it;
///  - **process**: the cell topology starts with one F operator per
///    attribute (F is the only operator able to homogenise the incoming
///    inhomogeneous MDPP), followed by a chain of T operators kept sorted
///    by descending output rate with the highest-rate T closest to F;
///    queries needing only part of a cell get a P operator to carve out
///    their sub-region;
///  - **merge**: each query's per-cell partial streams are combined by a
///    U operator into the final MCDS, delivered through a reorder buffer
///    (multi-cell queries: restores canonical (t, id) order at each step
///    boundary, so delivery order is identical on every execution path and
///    shard count) and a rate monitor into a sink.
///
/// Execution is batch-native: `ProcessBatch` routes the incoming handler
/// batch into one recycled `ops::TupleBatch` inbox per touched (cell,
/// attribute) chain and drives each chain through `Operator::PushBatch`,
/// so the hot path pays one virtual call per operator per batch instead
/// of per tuple. `ProcessTuple` remains as the tuple-at-a-time reference
/// path; both deliver identical per-query streams (asserted in
/// tests/ops_batch_test.cc). F-operator violation reports are buffered
/// while a batch is in flight and replayed at the batch boundary sorted
/// by `FlattenBatchReport::completed_at` — the canonical simulation-time
/// order that the sharded runtime reproduces for any shard count.
///
/// Query insertion and deletion follow the paper's topology-surgery rules:
/// T chains stay sorted; consecutive T operators with no branching point
/// between them are merged into one; deleting a query removes its stream
/// right-to-left until a branching point, and deletes the hashmap key once
/// a cell's topology empties.

namespace craqr {
namespace fabric {

/// \brief Fabricator tuning parameters.
struct FabricConfig {
  /// F-operator batch size (tuples per estimation batch).
  std::size_t flatten_batch_size = 128;
  /// F-operator estimation mode.
  ops::FlattenMode flatten_mode = ops::FlattenMode::kBatch;
  /// Intensity clamp inside F.
  double flatten_min_rate = 1e-9;
  /// F batches smaller than this skip the MLE (homogeneous fallback); see
  /// FlattenConfig::min_batch_for_estimation.
  std::size_t flatten_min_batch_for_estimation = 8;
  /// F output rate = headroom * (highest query rate in the cell); must be
  /// > 1 so "the output rate of the F-operator is ... greater than the
  /// output rate of the first T-operator" (paper Section V rule 3).
  double headroom = 1.25;
  /// Per-query sink capacity (most recent tuples retained).
  std::size_t sink_capacity = 1 << 20;
  /// Rate-monitor window (minutes).
  double monitor_window = 5.0;
  /// Master seed for operator randomness.
  std::uint64_t seed = 0x5EED5EED;
  /// Pool the fabricator's string payloads live in: checkpoint serde
  /// resolves and re-interns through it, and ReinternStrings evacuates
  /// into it. nullptr means ValuePool::Global() (the default producers
  /// intern into).
  ops::ValuePool* value_pool = nullptr;
  /// \brief Cross-query subplan sharing (the paper's operator-fabric
  /// economy). Equal-rate T stages are always shared (Section V rule 2 —
  /// the chain structure requires it); this flag additionally dedups the
  /// P carve-out stage: queries whose (cell, attribute, operator-prefix
  /// signature, overlap region) match an already-live carve-out tap the
  /// existing P through a ref-counted splitter instead of materializing a
  /// duplicate P that re-scans the full T output. P and the splitter draw
  /// no randomness and T structure/seeds are untouched, so delivered
  /// streams are byte-exact with sharing on or off (pinned in
  /// tests/fabric_sharing_test.cc).
  bool enable_sharing = true;
};

/// \brief The user-facing handle of a fabricated crowdsensed data stream.
struct QueryStream {
  query::QueryId id = 0;
  ops::AttributeId attribute = 0;
  /// The query region clipped to the system region R.
  geom::Rect region;
  /// Requested rate (tuples/km^2/min).
  double rate = 0.0;
  /// Endpoint collecting the fabricated MCDS.
  ops::SinkOperator* sink = nullptr;
  /// Delivered-rate probe in front of the sink.
  ops::RateMonitorOperator* monitor = nullptr;
};

/// \brief Fired whenever an F operator publishes a batch report; carries
/// the percent rate violation N_v used for budget tuning.
using ViolationCallback = std::function<void(
    ops::AttributeId attribute, const geom::CellIndex& cell,
    const ops::FlattenBatchReport& report)>;

/// \brief Sort key of the canonical violation-report replay order:
/// completion time, ties broken by (attribute, cell). Both the
/// single-threaded fabricator and the sharded runtime stable_sort their
/// replay with this one comparator — the shard-count independence of the
/// feedback loop rests on the two paths never diverging here.
struct ViolationReplayKey {
  double completed_at = 0.0;
  ops::AttributeId attribute = 0;
  geom::CellIndex cell;
};

/// Strict weak ordering over ViolationReplayKey (see above).
bool ViolationReplayLess(const ViolationReplayKey& a,
                         const ViolationReplayKey& b);

/// \brief Counter conservation across a merge stage built by
/// BuildMergeStage: everything the merge head emits reaches the monitor
/// and everything the monitor forwards reaches the sink. Shared by both
/// ValidateInvariants implementations (no-op for partial streams, which
/// have no monitor).
Status ValidateMergeStageCounters(const QueryStream& stream,
                                  const ops::Operator& merge_head);

/// \brief Builds a query's merge stage (paper Fig. 2(c)) into `pipeline`:
/// a U operator over the per-cell overlap pieces (pass-through when the
/// query touches a single cell), a reorder buffer restoring canonical
/// (t, id) delivery order at step boundaries (multi-cell queries only —
/// a single cell chain is already time-ordered), a delivered-rate monitor
/// over the clipped region `stream->region`, and the user-facing sink.
/// Sets the handle's monitor/sink pointers and returns the stage's input
/// operator. Shared by StreamFabricator and the sharded runtime's router
/// so the two execution paths cannot diverge — in content *or* order.
Result<ops::Operator*> BuildMergeStage(
    QueryStream* stream, ops::Pipeline* pipeline,
    const std::vector<geom::CellOverlap>& overlaps, double monitor_window,
    std::size_t sink_capacity);

/// \brief One grid cell's live topology packaged for migration between
/// fabricators (load-aware rebalancing, runtime::ShardedFabricator).
///
/// Produced by StreamFabricator::ExtractCell and consumed exactly once by
/// StreamFabricator::AdoptCell on the destination. The payload carries the
/// cell's operator pipeline *alive* — F/T RNG states, thinning phases and
/// partial F batches move with it — which is what keeps delivered streams
/// byte-exact across migrations: operator seeds are cell-local
/// (OperatorSeed), so the destination continues the exact random sequence
/// the source would have produced. Dropping an unconsumed CellMigration
/// destroys the cell's topology (its queries lose that cell's stream), so
/// callers must adopt or treat the migration as failed.
class CellMigration {
 public:
  CellMigration() noexcept;
  CellMigration(CellMigration&&) noexcept;
  CellMigration& operator=(CellMigration&&) noexcept;
  CellMigration(const CellMigration&) = delete;
  CellMigration& operator=(const CellMigration&) = delete;
  ~CellMigration();

  /// The migrating cell's grid index.
  geom::CellIndex cell() const;

  /// Source-local ids of the queries tapping the cell, deduplicated, in
  /// deterministic (attribute, chain position) order. The adopter maps
  /// each through its id translation table.
  std::vector<query::QueryId> tap_query_ids() const;

  /// True when no payload is held (default-constructed or moved-from).
  bool empty() const { return rep_ == nullptr; }

 private:
  friend class StreamFabricator;
  struct Rep;  // defined in fabricator.cc; holds the private Cell
  std::unique_ptr<Rep> rep_;
};

/// \brief Multi-query stream fabricator over a logical grid.
class StreamFabricator {
 public:
  /// Creates a fabricator; requires headroom > 1 and positive window /
  /// batch parameters. Heap-allocated because F-operator callbacks hold a
  /// stable pointer to the fabricator.
  static Result<std::unique_ptr<StreamFabricator>> Make(
      const geom::Grid& grid, const FabricConfig& config = FabricConfig());

  StreamFabricator(const StreamFabricator&) = delete;
  StreamFabricator& operator=(const StreamFabricator&) = delete;

  /// \brief Inserts an acquisitional query (paper Section V "Query
  /// Insertions") and returns its stream handle. The handle's pointers
  /// stay valid until RemoveQuery.
  Result<QueryStream> InsertQuery(ops::AttributeId attribute,
                                  const geom::Rect& region, double rate);

  /// \brief Inserts a query that materializes taps only for `overlaps` — a
  /// subset of the query region's cell overlaps — and funnels the per-cell
  /// partial streams straight into a delivery-only sink that invokes
  /// `on_deliver` once per delivered batch (active tuples, arrival order).
  /// The caller owns the cross-partition U merge stage; this is the
  /// shard-local half of the sharded runtime (runtime::ShardedFabricator),
  /// and the batch-shaped callback is what lets a shard splice a whole
  /// delivery into its outbox under one mutex acquisition. `region` is the
  /// full clipped query region, recorded on the handle for reference only;
  /// it is not re-validated here.
  Result<QueryStream> InsertQueryPartial(
      ops::AttributeId attribute, const geom::Rect& region, double rate,
      const std::vector<geom::CellOverlap>& overlaps,
      ops::SinkOperator::BatchCallback on_deliver);

  /// \brief Inserts a delivery endpoint with no taps: a partial query
  /// whose per-cell streams all arrive later via AdoptCell. This is how a
  /// rebalancing runtime materializes a query's presence on a destination
  /// shard that previously owned none of its cells — the shell supplies
  /// the merge head migrated taps reconnect to. Identical delivery
  /// semantics to InsertQueryPartial (batch callback, no monitor).
  Result<QueryStream> InsertQueryShell(
      ops::AttributeId attribute, const geom::Rect& region, double rate,
      ops::SinkOperator::BatchCallback on_deliver);

  /// \brief Deletes a query (paper Section V "Query Deletions"): its
  /// stream is unwired right-to-left until a branching point; emptied
  /// T chains are re-merged, emptied cells are evicted from the hashmap.
  Status RemoveQuery(query::QueryId id);

  /// \brief Detaches one materialized cell's topology for migration to a
  /// peer fabricator: every tap edge into this fabricator's merge stages
  /// is unwired (the taps travel inside the returned payload), the cell
  /// leaves the hashmap, and the routing table is marked dirty. Must be
  /// called at a batch boundary (no batch in flight). NotFound when the
  /// cell is not materialized — for a rebalancer that just means the hot
  /// cell has no live queries and only the ownership record moves.
  Result<CellMigration> ExtractCell(const geom::CellIndex& index);

  /// \brief Adopts a cell extracted from a peer fabricator. `id_map`
  /// translates the source fabricator's local query ids (see
  /// CellMigration::tap_query_ids) to this fabricator's — every tapping
  /// query must already be live here (InsertQueryPartial/InsertQueryShell)
  /// or Internal is returned and the payload is lost. Re-points the
  /// chains' F report callbacks at this fabricator, rewires every tap into
  /// the local merge heads, and registers the cell. Must be called at a
  /// batch boundary.
  Status AdoptCell(CellMigration migration,
                   const std::unordered_map<query::QueryId, query::QueryId>&
                       id_map);

  /// \name Checkpoint / restore (fault-tolerant runtime)
  ///
  /// SaveState serializes the fabricator's complete live state — every
  /// query record (with its delivery-sink counters) and every cell
  /// topology chain-by-chain (operator names, rates, RNG phases, partial
  /// F batches, shared-carve-out ref counts, throughput counters) — into
  /// a flat byte string. RestoreState rebuilds it on a *fresh* fabricator
  /// constructed over the same grid and config: queries are re-inserted
  /// as delivery shells (the factory supplies each one's batch callback,
  /// keyed by the snapshot's local id), topologies are reconstructed
  /// operator by operator and every saved state is re-applied, so the
  /// restored fabricator continues the exact per-cell random sequences
  /// and buffered batches the snapshot captured — delivered streams are
  /// byte-identical to an uninterrupted run (pinned in
  /// tests/runtime_checkpoint_test.cc).
  ///
  /// Restrictions: supported only for partial-delivery fabricators (every
  /// query inserted via InsertQueryPartial / InsertQueryShell — the shape
  /// ShardedFabricator's shards have); must be called at a batch boundary
  /// with no dispatch open and no unreplayed violation reports. String
  /// tuple payloads are saved by value and re-interned on restore
  /// (through FabricConfig::value_pool), so a snapshot is
  /// process-independent and stays valid across pool generation
  /// retirement.
  ///@{
  /// Builds the delivery callback for a restored query, keyed by the
  /// query's local id *in the snapshot* (the restoring side translates to
  /// its own routing ids).
  using DeliveryFactory = std::function<ops::SinkOperator::BatchCallback(
      query::QueryId snapshot_local_id)>;
  /// Serializes the fabricator into `out`.
  Status SaveState(std::string* out) const;
  /// Rebuilds from a SaveState blob; `id_map_out` (optional) receives the
  /// snapshot-local -> restored-local query id translation (the exact
  /// shape AdoptCell consumes).
  Status RestoreState(
      const std::string& bytes, const DeliveryFactory& make_delivery,
      std::unordered_map<query::QueryId, query::QueryId>* id_map_out);
  ///@}

  /// \brief Routes one crowdsensed tuple to its grid cell's topology (the
  /// map phase). Tuples landing outside every materialized cell or with
  /// an attribute no query asked for are counted and dropped. Violation
  /// reports fired by an F batch boundary crossed here are buffered and
  /// delivered only at the next FlushAll / ProcessBatch — drivers that
  /// use ProcessTuple with a violation callback must flush at their own
  /// batch boundaries (as ProcessBatch does) or no report is replayed.
  Status ProcessTuple(const ops::Tuple& tuple);

  /// \brief Batch-native map phase: a single-pass histogram partition
  /// (per-row flat cell + dense-table bucket resolution, then
  /// count -> prefix-sum -> scatter) groups the batch by (cell,
  /// attribute) chain, column-copies each group into that chain's
  /// recycled TupleBatch inbox in one splice, drives each chain through
  /// PushBatch, then flushes every topology (batch boundary) and replays
  /// buffered violation reports in completion-time order. No per-row
  /// hashmap lookup, no per-row dispatch branch. The batch is consumed
  /// (tuples move into the topologies).
  Status ProcessBatch(ops::TupleBatch& batch);

  /// Copying convenience overload of the batch-native ProcessBatch.
  Status ProcessBatch(const std::vector<ops::Tuple>& batch);

  /// \name Cooperative dispatch (work stealing)
  ///
  /// ProcessBatch split into a routing half and independently runnable
  /// chain-group jobs, so idle peers can help drain one batch without
  /// breaking per-cell ordering. BeginDispatch routes the batch into the
  /// per-chain inboxes (exactly like ProcessBatch) and partitions the
  /// touched chains into jobs such that chains sharing a tapping query —
  /// whose partial streams feed the same (not thread-safe) sink — always
  /// land in the same job. Distinct jobs may then run concurrently via
  /// RunDispatchJob (each drives its chains' inboxes through PushBatch in
  /// the deterministic routing order); FinishDispatch, called by the
  /// owning thread after every job completed, ends the batch with the
  /// usual FlushAll + canonical violation replay. The per-job tuple
  /// streams, and therefore the delivered streams, are byte-identical to
  /// the sequential ProcessBatch path.
  ///@{
  /// Routes `batch` (consumed) and publishes the job partition; returns
  /// the job count. FailedPrecondition when a dispatch is already open.
  Result<std::size_t> BeginDispatch(ops::TupleBatch& batch);
  /// Runs one job. Safe to call concurrently for distinct jobs; each job
  /// must run exactly once per BeginDispatch.
  Status RunDispatchJob(std::size_t job);
  /// Closes the dispatch (owner thread only, after all jobs completed).
  Status FinishDispatch();
  ///@}

  /// Flushes all cell topologies and query merge stages, then replays
  /// buffered violation reports sorted by completion time.
  Status FlushAll();

  /// \brief Registers the N_v callback consumed by the budget tuner.
  /// Reports fire at batch boundaries (end of ProcessBatch / FlushAll),
  /// sorted by (completed_at, attribute, cell) — the same canonical order
  /// the sharded runtime replays, so feedback consumers evolve
  /// identically on both execution paths.
  void SetViolationCallback(ViolationCallback callback);

  /// The stream handle of a live query.
  Result<QueryStream> GetStream(query::QueryId id) const;

  /// Grid cells a query's region overlaps (for handler subscriptions).
  Result<std::vector<geom::CellIndex>> QueryCells(query::QueryId id) const;

  /// Number of grid cells with materialized topologies ("only the grid
  /// cells that are useful for query processing are materialized").
  std::size_t NumMaterializedCells() const { return cells_.size(); }

  /// Number of live queries.
  std::size_t NumQueries() const { return queries_.size(); }

  /// Total PMAT operators across all cell topologies and merge stages.
  std::size_t TotalOperators() const;

  /// Total operator evaluations (sum of tuples_in over all operators) —
  /// the processing-cost metric of experiment E7.
  std::uint64_t TotalOperatorEvaluations() const;

  /// Tuples routed into some topology so far.
  std::uint64_t tuples_routed() const { return tuples_routed_; }

  /// Tuples dropped in the map phase.
  std::uint64_t tuples_unrouted() const { return tuples_unrouted_; }

  /// \name Sharing telemetry (see FabricConfig::enable_sharing)
  ///@{
  /// Tap insertions that attached to an already-live stage (an equal-rate
  /// T or a shared P carve-out) instead of materializing a duplicate.
  std::uint64_t shared_prefix_hits() const { return shared_prefix_hits_; }
  /// Tap edges detached so far (RemoveTap; migration unwires don't count —
  /// those taps stay live and reattach on adoption).
  std::uint64_t taps_detached() const { return taps_detached_; }
  /// Live stages (T nodes or P carve-outs) currently tapped by >= 2
  /// queries — the instantaneous sharing census.
  std::size_t SharedStagesLive() const;
  /// Per-cell shared-stage census: (flat cell, shared-stage count) pairs
  /// for every cell holding at least one stage with >= 2 tappers, sorted
  /// by flat cell (ShardedStats aggregates these across shards).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> SharedStageCensus()
      const;
  ///@}

  /// \name Route-LUT maintenance telemetry
  ///@{
  /// Full rows x cols LUT rebuilds (RebuildRouteTable) so far.
  std::uint64_t route_rebuilds() const { return route_rebuilds_; }
  /// Incremental single-slot LUT patches (chain add/evict) so far.
  std::uint64_t route_patches() const { return route_patches_; }
  ///@}

  /// Human-readable rendering of every cell topology and merge stage —
  /// the executable version of the paper's Figure 2.
  std::string DescribeTopology() const;

  /// Invokes `visitor` on every operator in every cell topology and merge
  /// stage (cost accounting, diagnostics).
  void VisitOperators(
      const std::function<void(const ops::Operator&)>& visitor) const;

  /// \name Memory governance hooks (runtime memory governor)
  ///@{
  /// Re-interns every string payload buffered anywhere in the fabricator
  /// (chain inboxes, F accumulators, reorder buffers, sink storage) into
  /// `pool`'s current tier, so older pool generations hold no live handles
  /// and can be retired. Must be called at a batch boundary; values are
  /// untouched, only handles move, so delivered streams are unaffected.
  void ReinternStrings(ops::ValuePool& pool);
  /// Releases recycled slack: shrinks drained chain inboxes and the
  /// histogram-router scratch columns back to their live size.
  void TrimMemory();
  /// Approximate bytes held by recycled batch storage and router scratch
  /// (chain inboxes + scratch columns) — governor accounting input.
  std::size_t BatchMemoryBytes() const;
  ///@}

  /// \brief Structural self-check of the paper's Section-V topology rules.
  ///
  /// Verifies, for every materialized cell chain: the F target exceeds the
  /// first T's output rate (rule 3); T output rates are strictly
  /// descending with the highest-rate T closest to F (rule 1); no tap-less
  /// T survives (rule 2 / deletion re-merge); every T's configured input
  /// rate matches its upstream's output rate; and every edge F→T, T→T,
  /// T→tap is present. Also checks every query tap resolves to a live cell
  /// chain. Returns the first violated invariant as an Internal error.
  /// Used by the churn property tests and available to embedders as a
  /// debugging probe.
  Status ValidateInvariants() const;

  /// The logical grid.
  const geom::Grid& grid() const { return grid_; }

 private:
  friend struct CellMigration::Rep;  // carries a Cell across fabricators

  /// \brief A ref-counted shared P carve-out below one T node
  /// (FabricConfig::enable_sharing). All queries whose overlap region and
  /// operator-prefix signature match tap the same P; port 0 (the overlap)
  /// feeds a pass-through splitter that broadcasts the carved sub-stream
  /// to every sharer's merge head. The sharer list is the ref count:
  /// RemoveTap detaches one splitter edge and only tears the P + splitter
  /// down when the last sharer leaves, so query churn never perturbs
  /// surviving queries' delivered bytes.
  struct SharedPartition {
    /// PrefixSignature of the owning T position, extended with the
    /// overlap-region bits — the shared-subplan index key.
    std::uint64_t signature = 0;
    /// The carved overlap region (exact-match guard against collisions).
    geom::Rect region;
    ops::PartitionOperator* op = nullptr;
    /// Broadcast stage on P port 0; one output per sharer.
    ops::PassThroughOperator* splitter = nullptr;
    /// Queries tapping this carve-out (ref count = size()). Source-local
    /// ids; AdoptCell translates them like ThinNode::tap_queries.
    std::vector<query::QueryId> sharers;
  };

  /// One T node in a cell's per-attribute chain.
  struct ThinNode {
    ops::ThinOperator* op = nullptr;
    double out_rate = 0.0;
    /// Queries tapping this T's output.
    std::vector<query::QueryId> tap_queries;
    /// Live shared P carve-outs below this T (enable_sharing only).
    std::vector<SharedPartition> partitions;
  };

  /// Per-(cell, attribute) operator chain: F followed by sorted T's.
  struct Chain {
    ops::FlattenOperator* flatten = nullptr;
    double f_target = 0.0;
    std::vector<ThinNode> thins;  // descending out_rate
    /// Monotone per-chain operator-creation counter; seeds the next F/T
    /// RNG (see OperatorSeed).
    std::uint64_t op_seq = 0;
    /// The owning cell's flat grid index — the slot routed-tuple counts
    /// land in (per-cell hot-spot telemetry).
    std::uint32_t flat_cell = 0;
    /// This chain's bucket in the dense route LUT (0 = not in the table;
    /// live buckets start at 1 — bucket 0 is the unrouted sentinel).
    /// Maintained incrementally by RouteNoteChainAdded/Removed.
    std::uint32_t route_bucket = 0;
    /// Recycled routing inbox ProcessBatch fills for this chain; always
    /// drained before ProcessBatch returns.
    ops::TupleBatch inbox;
  };

  /// Materialized cell topology (one hashmap value).
  struct Cell {
    ops::Pipeline pipeline;
    std::unordered_map<ops::AttributeId, Chain> chains;
  };

  /// A query's attachment in one cell.
  struct Tap {
    geom::CellIndex cell;
    geom::Rect overlap;
    bool covers_cell = false;
    /// The P operator carving out the overlap; nullptr when the query
    /// covers the whole cell.
    ops::PartitionOperator* partition = nullptr;
    /// True when `partition` is a ref-counted SharedPartition: the merge
    /// edge then hangs off its splitter, not off the P itself.
    bool shared = false;
  };

  /// Everything owned per query.
  struct QueryState {
    QueryStream stream;
    ops::Pipeline merge_pipeline;
    /// The operator per-cell streams feed into (U or pass-through).
    ops::Operator* merge_head = nullptr;
    std::vector<Tap> taps;
  };

  StreamFabricator(const geom::Grid& grid, const FabricConfig& config)
      : grid_(grid), config_(config) {}

  /// \brief Deterministic RNG seed for the `seq`-th operator ever created
  /// in the (cell, attribute) chain, derived from the master seed.
  ///
  /// Seeding operators by *where they live* rather than by global creation
  /// order makes every per-cell stream a pure function of the master seed
  /// and that cell's own query/tuple history. Two fabricators that own
  /// disjoint cell subsets therefore produce, cell by cell, exactly the
  /// streams a single fabricator owning all cells would — the property the
  /// sharded runtime's equivalence guarantee rests on.
  std::uint64_t OperatorSeed(const geom::CellIndex& index,
                             ops::AttributeId attribute,
                             std::uint64_t seq) const;

  Result<QueryStream> FinishInsert(QueryState qs,
                                   const std::vector<geom::CellOverlap>& overlaps,
                                   double rate);

  Cell* GetOrCreateCell(const geom::CellIndex& index);
  Result<Chain*> GetOrCreateChain(Cell* cell, const geom::CellIndex& index,
                                  ops::AttributeId attribute, double rate);
  /// Points `chain`'s F report callback at this fabricator's violation
  /// buffer — set at chain creation and re-bound when a migrated chain
  /// changes owners (AdoptCell).
  void BindChainReportCallback(Chain* chain, ops::AttributeId attribute,
                               const geom::CellIndex& index);
  /// Map-phase lookup: the chain owning a tuple at (x, y) with the given
  /// attribute, or nullptr with the routed/unrouted counters updated.
  /// Column-shaped so the batch path reads only the point and attribute
  /// columns.
  Chain* RouteTarget(double x, double y, ops::AttributeId attribute);
  /// \brief Rebuilds the dense routing table the histogram router reads:
  /// one bucket id per (flat cell, attribute slot), with one extra
  /// sentinel row/column so invalid cells and unknown attributes resolve
  /// to the unrouted bucket through the same unconditional load. Called
  /// lazily from ProcessBatch after topology surgery (route_dirty_);
  /// disables the table (falling back to per-row map routing) when the
  /// grid x attribute product would make it unreasonably large.
  void RebuildRouteTable();
  /// \brief Incremental LUT maintenance: a freshly created chain gets the
  /// next bucket id and one LUT slot write instead of marking the whole
  /// table dirty. Falls back to a full rebuild (route_dirty_) when the
  /// chain's attribute has no LUT column yet — the attribute-slot set
  /// changed — or when the table is disabled/dirty anyway.
  void RouteNoteChainAdded(std::uint32_t flat, ops::AttributeId attribute,
                           Chain* chain);
  /// \brief Incremental LUT maintenance for chain eviction/extraction:
  /// clears the chain's LUT slot back to the unrouted sentinel and leaves
  /// a bucket hole. Schedules a compacting full rebuild once holes
  /// outnumber live buckets.
  void RouteNoteChainRemoved(Chain* chain, ops::AttributeId attribute);
  /// Per-row map-lookup routing pass — the pre-histogram reference
  /// implementation, kept as the fallback for oversized tables.
  void RouteBatchFallback(ops::TupleBatch& batch);
  /// The shared routing half of ProcessBatch / BeginDispatch: materialize,
  /// rebuild the LUT if dirty, group the batch into per-chain inboxes
  /// (batch consumed), update routed/unrouted counters.
  void RouteBatch(ops::TupleBatch& batch);
  /// Partitions batch_touched_ into dispatch_jobs_: union-find over the
  /// touched chains, uniting chains that share a tapping query.
  void BuildDispatchJobs();
  /// Drives every inbox ProcessBatch filled (in first-touch order) and
  /// ends the batch: FlushAll + violation replay.
  Status DispatchInboxesAndFlush();
  /// Replays buffered F reports to the violation callback, sorted by
  /// (completed_at, attribute, cell) — see the class comment.
  void ReplayPendingViolations();
  Status InsertTap(QueryState* qs, const geom::CellOverlap& overlap,
                   double rate);
  Status RemoveTap(QueryState* qs, const Tap& tap);
  /// \brief Canonical operator-prefix signature of chain positions
  /// [0, pos]: an FNV-1a fold over op kinds and rate parameters (F target,
  /// then the descending T output rates down to `pos`). Operator seeds are
  /// position-derived (OperatorSeed), so within one (cell, attribute)
  /// chain an equal signature means a byte-identical subplan — the
  /// shared-subplan index key, extended with the overlap-region bits for
  /// P carve-out dedup (see SharedPartition::signature).
  static std::uint64_t PrefixSignature(const Chain& chain, std::size_t pos);
  /// Input rate of the thin at `index` (F target for the first thin).
  static double ThinInputRate(const Chain& chain, std::size_t index);

  /// An F report captured mid-batch, replayed sorted at the boundary.
  struct PendingViolation {
    ops::AttributeId attribute = 0;
    geom::CellIndex cell;
    ops::FlattenBatchReport report;
  };

  geom::Grid grid_;
  FabricConfig config_;
  std::unordered_map<geom::CellIndex, std::unique_ptr<Cell>,
                     geom::CellIndexHash>
      cells_;
  std::unordered_map<query::QueryId, QueryState> queries_;
  query::QueryId next_query_id_ = 1;
  ViolationCallback violation_callback_;
  /// Chains whose inbox the in-flight ProcessBatch touched, in first-touch
  /// order; empty between calls.
  std::vector<Chain*> batch_touched_;
  /// Open cooperative dispatch: disjoint chain groups over batch_touched_
  /// (see BeginDispatch). Empty while no dispatch is in flight.
  std::vector<std::vector<Chain*>> dispatch_jobs_;
  /// Guards pending_violations_: with cooperative dispatch, concurrent
  /// jobs' F callbacks append from several threads. Uncontended on the
  /// sequential path.
  std::mutex violations_mu_;
  std::vector<PendingViolation> pending_violations_;
  std::uint64_t tuples_routed_ = 0;
  std::uint64_t tuples_unrouted_ = 0;
  /// \name Sharing telemetry (accessors above). The obs counters mirror
  /// the members process-wide ("craqr.fabric.shared_prefix_hits",
  /// ".stages_shared", ".taps_detached"); per-instance values come from
  /// the members. stages_shared counts share *events* (a stage gaining a
  /// second tapper), the monotone form of the live census.
  ///@{
  std::uint64_t shared_prefix_hits_ = 0;
  std::uint64_t taps_detached_ = 0;
  obs::Counter* obs_prefix_hits_ = nullptr;
  obs::Counter* obs_stages_shared_ = nullptr;
  obs::Counter* obs_taps_detached_ = nullptr;
  ///@}
  /// Process-wide per-flat-cell routed-tuple counters
  /// ("craqr.fabric.cell_routed.h<num_cells>") — the hot-cell signal for
  /// load-aware rebalancing. Shared by every fabricator over an
  /// equal-sized grid (shards of one runtime included); nullptr when the
  /// grid is too fine for a dense bank. Observation-only and gated on
  /// obs::IsEnabled().
  obs::CounterBank* cell_routed_ = nullptr;

  /// \name Histogram-router state (see RebuildRouteTable / ProcessBatch)
  ///@{
  /// Set by topology surgery; the next ProcessBatch rebuilds the table.
  bool route_dirty_ = true;
  /// False when the dense table would be oversized; ProcessBatch then
  /// routes through the per-row fallback.
  bool route_lut_enabled_ = false;
  /// Distinct attributes with at least one live chain, sorted (the
  /// table's column space; per-row attribute -> slot is a branch-free
  /// scan of this handful of values).
  std::vector<ops::AttributeId> route_attrs_;
  /// Dense (NumCells()+1) x (route_attrs_.size()+1) bucket table; the
  /// extra row/column map invalid cells / unknown attributes to bucket 0,
  /// the unrouted sentinel. Live chains occupy buckets 1..n so chain
  /// append/evict patches one slot instead of sweeping the table
  /// (RouteNoteChainAdded/Removed).
  std::vector<std::uint32_t> route_lut_;
  /// Bucket id -> chain; index 0 is the unrouted sentinel (nullptr), and
  /// evicted chains leave nullptr holes until the next compacting rebuild.
  /// Rebuilds enumerate in deterministic (flat cell, attribute) order;
  /// incremental appends extend in creation order.
  std::vector<Chain*> route_chains_;
  /// nullptr holes in route_chains_; a rebuild is scheduled when holes
  /// outnumber live buckets.
  std::size_t route_holes_ = 0;
  /// Maintenance telemetry (accessors above).
  std::uint64_t route_rebuilds_ = 0;
  std::uint64_t route_patches_ = 0;
  /// Recycled per-batch scratch columns: per-row flat cell, per-row
  /// bucket, per-bucket end offsets, bucket-grouped row indices.
  std::vector<std::uint32_t> row_cells_;
  std::vector<std::uint32_t> row_buckets_;
  std::vector<std::uint32_t> bucket_counts_;
  std::vector<std::uint32_t> grouped_rows_;
  ///@}
};

}  // namespace fabric
}  // namespace craqr
