#include "fabric/fabricator.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <sstream>
#include <tuple>

#include "common/logging.h"
#include "common/macros.h"
#include "common/simd.h"
#include "obs/metrics.h"
#include "ops/reorder.h"

namespace craqr {
namespace fabric {

namespace {

/// Relative tolerance for treating two query rates as equal (tap sharing).
constexpr double kRateEpsilon = 1e-9;

bool RatesEqual(double a, double b) {
  return std::fabs(a - b) <= kRateEpsilon * std::max({1.0, a, b});
}

/// Upper bound on the dense routing table (entries, 4 bytes each). A
/// topology whose grid-cells x attributes product exceeds this keeps the
/// per-row fallback instead of a 16+ MB table.
constexpr std::uint64_t kMaxRouteLutEntries = 1ull << 22;

/// Upper bound on live attributes for the LUT path: the per-row
/// attribute -> slot resolution is a branch-free linear scan over the
/// live attributes, which only beats a hashmap while that list is a
/// handful of values. Beyond this, the per-row fallback's single map
/// lookup wins.
constexpr std::size_t kMaxRouteSlotScan = 16;

/// FNV-1a fold of one 64-bit word (prefix-signature building block).
std::uint64_t Fnv1a64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t Fnv1a64(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return Fnv1a64(h, bits);
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

/// Extends a chain-prefix signature with the carve-out region — the full
/// shared-subplan key of one P stage.
std::uint64_t RegionSignature(std::uint64_t prefix, const geom::Rect& r) {
  std::uint64_t h = Fnv1a64(prefix,
                            static_cast<std::uint64_t>(
                                ops::OperatorKind::kPartition));
  h = Fnv1a64(h, r.x_min());
  h = Fnv1a64(h, r.y_min());
  h = Fnv1a64(h, r.x_max());
  h = Fnv1a64(h, r.y_max());
  return h;
}

/// The SharedPartition entry owning `op` under `node`, or nullptr. Const
/// and mutable callers share one template (migration, removal,
/// validation).
template <typename Node>
auto* FindShare(Node& node, const ops::PartitionOperator* op) {
  for (auto& entry : node.partitions) {
    if (entry.op == op) {
      return &entry;
    }
  }
  using Entry = decltype(&node.partitions[0]);
  return static_cast<Entry>(nullptr);
}

}  // namespace

/// The migration payload: the live Cell plus every detached tap, in the
/// deterministic order ExtractCell recorded them. Defined here so the
/// private Cell/Tap types never leak into the public header.
struct CellMigration::Rep {
  geom::CellIndex index;
  std::unique_ptr<StreamFabricator::Cell> cell;
  struct TapTransfer {
    query::QueryId source_id = 0;
    StreamFabricator::Tap tap;
  };
  std::vector<TapTransfer> taps;
};

CellMigration::CellMigration() noexcept = default;
CellMigration::CellMigration(CellMigration&&) noexcept = default;
CellMigration& CellMigration::operator=(CellMigration&&) noexcept = default;
CellMigration::~CellMigration() = default;

geom::CellIndex CellMigration::cell() const {
  return rep_ != nullptr ? rep_->index : geom::CellIndex{};
}

std::vector<query::QueryId> CellMigration::tap_query_ids() const {
  std::vector<query::QueryId> ids;
  if (rep_ == nullptr) {
    return ids;
  }
  for (const auto& transfer : rep_->taps) {
    if (std::find(ids.begin(), ids.end(), transfer.source_id) == ids.end()) {
      ids.push_back(transfer.source_id);
    }
  }
  return ids;
}

bool ViolationReplayLess(const ViolationReplayKey& a,
                         const ViolationReplayKey& b) {
  if (a.completed_at != b.completed_at) {
    return a.completed_at < b.completed_at;
  }
  if (a.attribute != b.attribute) {
    return a.attribute < b.attribute;
  }
  if (a.cell.q != b.cell.q) {
    return a.cell.q < b.cell.q;
  }
  return a.cell.r < b.cell.r;
}

Status ValidateMergeStageCounters(const QueryStream& stream,
                                  const ops::Operator& merge_head) {
  if (stream.monitor == nullptr) {
    return Status::OK();  // partial stream: bare forwarding sink
  }
  const auto fail = [&stream](const std::string& what) {
    return Status::Internal("merge stage counters violated: query " +
                            std::to_string(stream.id) + " " + what);
  };
  // With a reorder buffer between head and monitor this holds at step
  // boundaries (the buffer always drains on Flush); validators run there.
  if (stream.monitor->stats().tuples_in != merge_head.stats().tuples_out) {
    return fail("merge head emits do not all reach the monitor");
  }
  if (stream.sink->stats().tuples_in != stream.monitor->stats().tuples_out) {
    return fail("monitor emits do not all reach the sink");
  }
  return Status::OK();
}

Result<ops::Operator*> BuildMergeStage(
    QueryStream* stream, ops::Pipeline* pipeline,
    const std::vector<geom::CellOverlap>& overlaps, double monitor_window,
    std::size_t sink_capacity) {
  std::ostringstream base;
  base << "Q" << stream->id;
  ops::Operator* merge_head = nullptr;
  ops::Operator* pre_monitor = nullptr;  // last operator before the monitor
  if (overlaps.size() >= 2) {
    std::vector<geom::Rect> pieces;
    pieces.reserve(overlaps.size());
    for (const auto& overlap : overlaps) {
      pieces.push_back(overlap.region);
    }
    CRAQR_ASSIGN_OR_RETURN(
        auto union_owned,
        ops::UnionOperator::Make(base.str() + "-union", std::move(pieces)));
    merge_head = pipeline->Add(std::move(union_owned));
    // Multi-cell merges interleave several upstream chains; the reorder
    // buffer flushes each processing step in canonical (t, id) order so
    // delivery order is identical on every execution path and shard
    // count. Single-cell streams skip it: one chain is already
    // time-ordered.
    CRAQR_ASSIGN_OR_RETURN(
        auto reorder_owned, ops::ReorderOperator::Make(base.str() + "-order"));
    ops::ReorderOperator* reorder = pipeline->Add(std::move(reorder_owned));
    merge_head->AddOutput(reorder);
    pre_monitor = reorder;
  } else {
    CRAQR_ASSIGN_OR_RETURN(
        auto pass_owned, ops::PassThroughOperator::Make(base.str() + "-merge"));
    merge_head = pipeline->Add(std::move(pass_owned));
    pre_monitor = merge_head;
  }
  CRAQR_ASSIGN_OR_RETURN(
      auto monitor_owned,
      ops::RateMonitorOperator::Make(base.str() + "-monitor", monitor_window,
                                     stream->region.Area()));
  ops::RateMonitorOperator* monitor = pipeline->Add(std::move(monitor_owned));
  CRAQR_ASSIGN_OR_RETURN(
      auto sink_owned,
      ops::SinkOperator::Make(base.str() + "-sink", sink_capacity));
  ops::SinkOperator* sink = pipeline->Add(std::move(sink_owned));
  pre_monitor->AddOutput(monitor);
  monitor->AddOutput(sink);
  stream->monitor = monitor;
  stream->sink = sink;
  return merge_head;
}

std::uint64_t StreamFabricator::OperatorSeed(const geom::CellIndex& index,
                                             ops::AttributeId attribute,
                                             std::uint64_t seq) const {
  std::uint64_t s = SplitMix64(config_.seed);
  s = SplitMix64(s ^ ((static_cast<std::uint64_t>(index.q) << 32) | index.r));
  s = SplitMix64(s ^ attribute);
  return SplitMix64(s ^ seq);
}

Result<std::unique_ptr<StreamFabricator>> StreamFabricator::Make(
    const geom::Grid& grid, const FabricConfig& config) {
  if (!(config.headroom > 1.0)) {
    return Status::InvalidArgument(
        "headroom must be > 1 so the F output rate exceeds the first T "
        "output rate (paper Section V)");
  }
  if (config.flatten_batch_size < 2) {
    return Status::InvalidArgument("flatten batch size must be >= 2");
  }
  if (!(config.monitor_window > 0.0)) {
    return Status::InvalidArgument("monitor window must be > 0");
  }
  if (config.sink_capacity < 1) {
    return Status::InvalidArgument("sink capacity must be >= 1");
  }
  auto fabricator = std::unique_ptr<StreamFabricator>(
      new StreamFabricator(grid, config));
  // Per-cell routed-tuple counter bank, shared process-wide by every
  // fabricator over an equal-sized grid (the name encodes the cell count
  // so differently sized grids never alias). Skipped for grids too fine
  // for a dense bank — the same bound the route LUT uses.
  if (static_cast<std::uint64_t>(grid.NumCells()) + 1 <=
      kMaxRouteLutEntries) {
    fabricator->cell_routed_ = obs::GetCounterBank(
        "craqr.fabric.cell_routed.h" + std::to_string(grid.NumCells()),
        grid.NumCells());
  }
  // Process-wide sharing telemetry (functional: tests and ShardedStats
  // read the per-instance members; the registry counters feed the
  // exporter). stages_shared counts share events — a stage gaining its
  // second tapper — the monotone form of the live census.
  fabricator->obs_prefix_hits_ =
      obs::GetCounter("craqr.fabric.shared_prefix_hits");
  fabricator->obs_stages_shared_ =
      obs::GetCounter("craqr.fabric.stages_shared");
  fabricator->obs_taps_detached_ =
      obs::GetCounter("craqr.fabric.taps_detached");
  return fabricator;
}

void StreamFabricator::SetViolationCallback(ViolationCallback callback) {
  violation_callback_ = std::move(callback);
}

StreamFabricator::Cell* StreamFabricator::GetOrCreateCell(
    const geom::CellIndex& index) {
  auto it = cells_.find(index);
  if (it == cells_.end()) {
    it = cells_.emplace(index, std::make_unique<Cell>()).first;
  }
  return it->second.get();
}

Result<StreamFabricator::Chain*> StreamFabricator::GetOrCreateChain(
    Cell* cell, const geom::CellIndex& index, ops::AttributeId attribute,
    double rate) {
  auto it = cell->chains.find(attribute);
  if (it != cell->chains.end()) {
    return &it->second;
  }
  // "If the key is absent, it is created and a F-operator is added to it.
  // The first operator is always the F-operator, as ... this is the only
  // operator that has the capability of converting an inhomogeneous MDPP
  // to a homogeneous MDPP."
  ops::FlattenConfig fc;
  fc.region = grid_.CellRect(index);
  fc.target_rate = config_.headroom * rate;
  fc.target_mode = ops::FlattenTargetMode::kRatePerVolume;
  fc.mode = config_.flatten_mode;
  fc.batch_size = config_.flatten_batch_size;
  fc.min_rate = config_.flatten_min_rate;
  fc.min_batch_for_estimation = config_.flatten_min_batch_for_estimation;
  std::ostringstream name;
  name << "F[a" << attribute << "]" << index.ToString();
  Chain chain;
  CRAQR_ASSIGN_OR_RETURN(
      auto flatten,
      ops::FlattenOperator::Make(
          name.str(), fc, Rng(OperatorSeed(index, attribute, chain.op_seq++))));
  chain.flatten = cell->pipeline.Add(std::move(flatten));
  chain.f_target = fc.target_rate;
  chain.flat_cell = grid_.FlatIndex(index);
  auto emplaced = cell->chains.emplace(attribute, std::move(chain));
  Chain* inserted = &emplaced.first->second;
  BindChainReportCallback(inserted, attribute, index);
  RouteNoteChainAdded(inserted->flat_cell, attribute, inserted);
  return inserted;
}

void StreamFabricator::BindChainReportCallback(Chain* chain,
                                               ops::AttributeId attribute,
                                               const geom::CellIndex& index) {
  // Reports are buffered and replayed at the batch boundary in
  // completion-time order (ReplayPendingViolations), so feedback consumers
  // see the same canonical order on every execution path. The buffer is
  // mutex-guarded because cooperative dispatch runs distinct chain groups
  // on several threads; replay order stays deterministic regardless of
  // arrival interleaving (ViolationReplayLess is a total order across
  // distinct (attribute, cell) keys, and one F's reports arrive in firing
  // order from whichever single thread runs its job).
  chain->flatten->SetReportCallback(
      [this, attribute, index](const ops::FlattenBatchReport& report) {
        if (violation_callback_) {
          std::lock_guard<std::mutex> lock(violations_mu_);
          pending_violations_.push_back({attribute, index, report});
        }
      });
}

double StreamFabricator::ThinInputRate(const Chain& chain, std::size_t index) {
  return index == 0 ? chain.f_target : chain.thins[index - 1].out_rate;
}

std::uint64_t StreamFabricator::PrefixSignature(const Chain& chain,
                                                std::size_t pos) {
  std::uint64_t h =
      Fnv1a64(kFnvOffset,
              static_cast<std::uint64_t>(ops::OperatorKind::kFlatten));
  h = Fnv1a64(h, chain.f_target);
  for (std::size_t i = 0; i <= pos && i < chain.thins.size(); ++i) {
    h = Fnv1a64(h, static_cast<std::uint64_t>(ops::OperatorKind::kThin));
    h = Fnv1a64(h, chain.thins[i].out_rate);
  }
  return h;
}

Status StreamFabricator::InsertTap(QueryState* qs,
                                   const geom::CellOverlap& overlap,
                                   double rate) {
  const geom::CellIndex index = overlap.cell;
  Cell* cell = GetOrCreateCell(index);
  CRAQR_ASSIGN_OR_RETURN(
      Chain * chain,
      GetOrCreateChain(cell, index, qs->stream.attribute, rate));

  // Locate the insertion point: chains are sorted by descending output
  // rate with the highest-rate T closest to F (paper Section V rule 1).
  std::size_t pos = 0;
  ThinNode* shared = nullptr;
  for (; pos < chain->thins.size(); ++pos) {
    if (RatesEqual(chain->thins[pos].out_rate, rate)) {
      shared = &chain->thins[pos];
      break;
    }
    if (chain->thins[pos].out_rate < rate) {
      break;
    }
  }

  ops::ThinOperator* tap_source = nullptr;
  if (shared != nullptr) {
    // An equal-rate T already exists; the new query taps the same T —
    // equivalent to the paper's rule 2 (never two consecutive T's without
    // a branching point; equal-rate demand never creates a second T).
    // This is a shared-prefix hit: the whole F -> ... -> T prefix is
    // reused instead of duplicated.
    ++shared_prefix_hits_;
    if (obs_prefix_hits_ != nullptr) {
      obs_prefix_hits_->Increment();
    }
    if (obs_stages_shared_ != nullptr && shared->tap_queries.size() == 1) {
      obs_stages_shared_->Increment();  // stage transitions to shared
    }
    shared->tap_queries.push_back(qs->stream.id);
    tap_source = shared->op;
  } else {
    // If the new T would become the first, make sure the F output rate
    // stays above it (rule 3).
    if (pos == 0 && chain->f_target <= rate * (1.0 + kRateEpsilon)) {
      const double new_target = config_.headroom * rate;
      CRAQR_RETURN_NOT_OK(chain->flatten->SetTargetRate(new_target));
      chain->f_target = new_target;
      if (!chain->thins.empty()) {
        // The old first T now receives the raised F rate... once the new T
        // is spliced in it will receive the new T's output instead; its
        // input is fixed below.
        CRAQR_RETURN_NOT_OK(chain->thins[0].op->UpdateRates(
            new_target, chain->thins[0].out_rate));
      }
    }
    const double input_rate = ThinInputRate(*chain, pos);
    std::ostringstream name;
    name << "T[a" << qs->stream.attribute << "]" << index.ToString() << "("
         << input_rate << "->" << rate << ")";
    CRAQR_ASSIGN_OR_RETURN(
        auto thin_owned,
        ops::ThinOperator::Make(
            name.str(), input_rate, rate,
            Rng(OperatorSeed(index, qs->stream.attribute, chain->op_seq++))));
    ops::ThinOperator* thin = cell->pipeline.Add(std::move(thin_owned));
    ops::Operator* prev =
        pos == 0 ? static_cast<ops::Operator*>(chain->flatten)
                 : static_cast<ops::Operator*>(chain->thins[pos - 1].op);
    if (pos < chain->thins.size()) {
      // Splice before the next T: its input drops to the new T's output.
      ops::ThinOperator* next = chain->thins[pos].op;
      prev->RemoveOutput(next);
      thin->AddOutput(next);
      CRAQR_RETURN_NOT_OK(
          next->UpdateRates(rate, chain->thins[pos].out_rate));
    }
    prev->AddOutput(thin);
    ThinNode node;
    node.op = thin;
    node.out_rate = rate;
    node.tap_queries.push_back(qs->stream.id);
    chain->thins.insert(chain->thins.begin() + static_cast<std::ptrdiff_t>(pos),
                        std::move(node));
    tap_source = thin;
  }

  // Wire the tap into the query's merge stage, through a P operator when
  // the query only needs part of the cell ("P-operators are required only
  // for Q3, since Q1 and Q2 perfectly overlap the grid cells").
  Tap tap;
  tap.cell = index;
  tap.overlap = overlap.region;
  tap.covers_cell = overlap.covers_cell;
  if (overlap.covers_cell) {
    tap_source->AddOutput(qs->merge_head);
  } else if (config_.enable_sharing) {
    // Shared-subplan index lookup: an identical carve-out below the same
    // canonical prefix (this T node) is tapped instead of duplicated. The
    // sharer list is the ref count; the splitter broadcasts P port 0 to
    // every sharer's merge head. P and the splitter draw no randomness,
    // so sharing cannot change delivered bytes.
    const std::size_t node_pos =
        static_cast<std::size_t>(std::find_if(chain->thins.begin(),
                                              chain->thins.end(),
                                              [&](const ThinNode& n) {
                                                return n.op == tap_source;
                                              }) -
                                 chain->thins.begin());
    ThinNode& node = chain->thins[node_pos];
    SharedPartition* entry = nullptr;
    for (auto& candidate : node.partitions) {
      if (candidate.region == overlap.region) {
        entry = &candidate;
        break;
      }
    }
    if (entry != nullptr) {
      ++shared_prefix_hits_;
      if (obs_prefix_hits_ != nullptr) {
        obs_prefix_hits_->Increment();
      }
      if (obs_stages_shared_ != nullptr && entry->sharers.size() == 1) {
        obs_stages_shared_->Increment();  // carve-out transitions to shared
      }
    } else {
      const std::uint64_t signature =
          RegionSignature(PrefixSignature(*chain, node_pos), overlap.region);
      const geom::Rect cell_rect = grid_.CellRect(index);
      std::vector<geom::Rect> regions;
      regions.push_back(overlap.region);
      for (const auto& piece :
           geom::Rect::Subtract(cell_rect, overlap.region)) {
        regions.push_back(piece);
      }
      // Named by the subplan key, not by a query: the stage outlives any
      // individual sharer.
      std::ostringstream name;
      name << "P[x" << std::hex << signature << std::dec << "]"
           << index.ToString();
      CRAQR_ASSIGN_OR_RETURN(
          auto partition_owned,
          ops::PartitionOperator::Make(name.str(), std::move(regions)));
      ops::PartitionOperator* partition =
          cell->pipeline.Add(std::move(partition_owned));
      CRAQR_ASSIGN_OR_RETURN(
          auto splitter_owned,
          ops::PassThroughOperator::Make(name.str() + "-split"));
      ops::PassThroughOperator* splitter =
          cell->pipeline.Add(std::move(splitter_owned));
      tap_source->AddOutput(partition);
      // Port 0 is the overlap region; the complement ports stay
      // unconnected (their tuples are not part of any sharer's stream).
      partition->AddOutput(splitter);
      node.partitions.push_back(
          {signature, overlap.region, partition, splitter, {}});
      entry = &node.partitions.back();
    }
    entry->sharers.push_back(qs->stream.id);
    entry->splitter->AddOutput(qs->merge_head);
    tap.partition = entry->op;
    tap.shared = true;
  } else {
    const geom::Rect cell_rect = grid_.CellRect(index);
    std::vector<geom::Rect> regions;
    regions.push_back(overlap.region);
    for (const auto& piece : geom::Rect::Subtract(cell_rect, overlap.region)) {
      regions.push_back(piece);
    }
    std::ostringstream name;
    name << "P[q" << qs->stream.id << "]" << index.ToString();
    CRAQR_ASSIGN_OR_RETURN(
        auto partition_owned,
        ops::PartitionOperator::Make(name.str(), std::move(regions)));
    ops::PartitionOperator* partition =
        cell->pipeline.Add(std::move(partition_owned));
    tap_source->AddOutput(partition);
    // Port 0 is the overlap region; the complement ports stay unconnected
    // (their tuples are not part of this query's stream).
    partition->AddOutput(qs->merge_head);
    tap.partition = partition;
  }
  qs->taps.push_back(tap);
  return Status::OK();
}

Result<QueryStream> StreamFabricator::InsertQuery(ops::AttributeId attribute,
                                                  const geom::Rect& region,
                                                  double rate) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    return Status::InvalidArgument("query rate must be > 0");
  }
  CRAQR_RETURN_NOT_OK(grid_.ValidateQueryRegion(region));
  CRAQR_ASSIGN_OR_RETURN(std::vector<geom::CellOverlap> overlaps,
                         grid_.Overlaps(region));
  const auto clipped = grid_.region().Intersection(region);
  if (!clipped.has_value()) {
    return Status::InvalidArgument(
        "query region does not intersect the system region");
  }

  const query::QueryId id = next_query_id_++;
  QueryState qs;
  qs.stream.id = id;
  qs.stream.attribute = attribute;
  qs.stream.region = *clipped;
  qs.stream.rate = rate;

  CRAQR_ASSIGN_OR_RETURN(
      qs.merge_head,
      BuildMergeStage(&qs.stream, &qs.merge_pipeline, overlaps,
                      config_.monitor_window, config_.sink_capacity));

  return FinishInsert(std::move(qs), overlaps, rate);
}

Result<QueryStream> StreamFabricator::FinishInsert(
    QueryState qs, const std::vector<geom::CellOverlap>& overlaps,
    double rate) {
  // Process stage: one tap per overlapped cell.
  for (const auto& overlap : overlaps) {
    CRAQR_RETURN_NOT_OK(InsertTap(&qs, overlap, rate));
  }

  const QueryStream handle = qs.stream;
  queries_.emplace(handle.id, std::move(qs));
  return handle;
}

Result<QueryStream> StreamFabricator::InsertQueryPartial(
    ops::AttributeId attribute, const geom::Rect& region, double rate,
    const std::vector<geom::CellOverlap>& overlaps,
    ops::SinkOperator::BatchCallback on_deliver) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    return Status::InvalidArgument("query rate must be > 0");
  }
  if (overlaps.empty()) {
    return Status::InvalidArgument("partial query needs at least one cell");
  }

  const query::QueryId id = next_query_id_++;
  QueryState qs;
  qs.stream.id = id;
  qs.stream.attribute = attribute;
  qs.stream.region = region;
  qs.stream.rate = rate;

  // No U merge and no rate monitor here: the per-cell partial streams of
  // this fabricator converge in a delivery-only sink, and the caller
  // merges across fabricators (paper Fig. 2(c)'s U stage, lifted one level
  // up by the sharded runtime). Whole batches leave via the callback.
  std::ostringstream base;
  base << "Q" << id;
  CRAQR_ASSIGN_OR_RETURN(
      auto sink_owned,
      ops::SinkOperator::MakeBatched(base.str() + "-partial-sink",
                                     std::move(on_deliver)));
  ops::SinkOperator* sink = qs.merge_pipeline.Add(std::move(sink_owned));
  qs.merge_head = sink;
  qs.stream.sink = sink;
  qs.stream.monitor = nullptr;

  return FinishInsert(std::move(qs), overlaps, rate);
}

Result<QueryStream> StreamFabricator::InsertQueryShell(
    ops::AttributeId attribute, const geom::Rect& region, double rate,
    ops::SinkOperator::BatchCallback on_deliver) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    return Status::InvalidArgument("query rate must be > 0");
  }
  const query::QueryId id = next_query_id_++;
  QueryState qs;
  qs.stream.id = id;
  qs.stream.attribute = attribute;
  qs.stream.region = region;
  qs.stream.rate = rate;
  // Same delivery endpoint as InsertQueryPartial, but zero taps: the
  // per-cell streams arrive only when AdoptCell wires migrated chains in.
  std::ostringstream base;
  base << "Q" << id;
  CRAQR_ASSIGN_OR_RETURN(
      auto sink_owned,
      ops::SinkOperator::MakeBatched(base.str() + "-partial-sink",
                                     std::move(on_deliver)));
  ops::SinkOperator* sink = qs.merge_pipeline.Add(std::move(sink_owned));
  qs.merge_head = sink;
  qs.stream.sink = sink;
  qs.stream.monitor = nullptr;
  const QueryStream handle = qs.stream;
  queries_.emplace(id, std::move(qs));
  return handle;
}

Result<CellMigration> StreamFabricator::ExtractCell(
    const geom::CellIndex& index) {
  auto cell_it = cells_.find(index);
  if (cell_it == cells_.end()) {
    return Status::NotFound("cell " + index.ToString() +
                            " is not materialized");
  }
  Cell* cell = cell_it->second.get();
  auto rep = std::make_unique<CellMigration::Rep>();
  rep->index = index;
  // Deterministic transfer order: chains by ascending attribute, taps in
  // chain position order — independent of hashmap iteration order, so the
  // destination rebuilds its edges identically run to run.
  std::vector<ops::AttributeId> attrs;
  attrs.reserve(cell->chains.size());
  for (const auto& [attribute, chain] : cell->chains) {
    (void)chain;
    attrs.push_back(attribute);
  }
  std::sort(attrs.begin(), attrs.end());
  for (const ops::AttributeId attribute : attrs) {
    Chain& chain = cell->chains.at(attribute);
    for (ThinNode& node : chain.thins) {
      for (const query::QueryId qid : node.tap_queries) {
        auto query_it = queries_.find(qid);
        if (query_it == queries_.end()) {
          return Status::Internal("cell " + index.ToString() +
                                  " taps dead query " + std::to_string(qid));
        }
        QueryState& qs = query_it->second;
        auto tap_it = qs.taps.begin();
        for (; tap_it != qs.taps.end(); ++tap_it) {
          if (tap_it->cell == index) {
            break;
          }
        }
        if (tap_it == qs.taps.end()) {
          return Status::Internal("query " + std::to_string(qid) +
                                  " has no tap record for cell " +
                                  index.ToString());
        }
        // Unwire the edge into this fabricator's merge stage; the P
        // operator (if any — shared carve-outs included, splitter and
        // sharer list with them) lives in the cell pipeline and travels
        // with the payload.
        if (tap_it->partition != nullptr) {
          SharedPartition* entry =
              tap_it->shared ? FindShare(node, tap_it->partition) : nullptr;
          if (tap_it->shared && entry == nullptr) {
            return Status::Internal("migrating shared tap lost its "
                                    "carve-out record");
          }
          if (entry != nullptr) {
            entry->splitter->RemoveOutput(qs.merge_head);
          } else {
            tap_it->partition->RemoveOutput(qs.merge_head);
          }
        } else {
          node.op->RemoveOutput(qs.merge_head);
        }
        rep->taps.push_back({qid, *tap_it});
        qs.taps.erase(tap_it);
      }
    }
    // The F callback captures this fabricator; never let it dangle while
    // the payload is in transit.
    chain.flatten->SetReportCallback(nullptr);
    RouteNoteChainRemoved(&chain, attribute);
  }
  rep->cell = std::move(cell_it->second);
  cells_.erase(cell_it);
  CellMigration migration;
  migration.rep_ = std::move(rep);
  return migration;
}

Status StreamFabricator::AdoptCell(
    CellMigration migration,
    const std::unordered_map<query::QueryId, query::QueryId>& id_map) {
  if (migration.empty() || migration.rep_->cell == nullptr) {
    return Status::InvalidArgument("empty cell migration payload");
  }
  std::unique_ptr<CellMigration::Rep> rep = std::move(migration.rep_);
  const geom::CellIndex index = rep->index;
  if (cells_.find(index) != cells_.end()) {
    return Status::Internal("destination already owns cell " +
                            index.ToString());
  }
  Cell* cell = rep->cell.get();
  for (auto& [attribute, chain] : cell->chains) {
    BindChainReportCallback(&chain, attribute, index);
    // The chain records which local queries tap each T (and which share
    // each carve-out); translate the source fabricator's ids to ours.
    for (ThinNode& node : chain.thins) {
      for (query::QueryId& qid : node.tap_queries) {
        const auto mapped = id_map.find(qid);
        if (mapped == id_map.end()) {
          return Status::Internal("cell migration tap query " +
                                  std::to_string(qid) + " has no id mapping");
        }
        qid = mapped->second;
      }
      for (SharedPartition& entry : node.partitions) {
        for (query::QueryId& qid : entry.sharers) {
          const auto mapped = id_map.find(qid);
          if (mapped == id_map.end()) {
            return Status::Internal("cell migration sharer query " +
                                    std::to_string(qid) +
                                    " has no id mapping");
          }
          qid = mapped->second;
        }
      }
    }
  }
  // Rewire every transferred tap into the local merge heads, in the
  // deterministic order ExtractCell recorded.
  for (const auto& transfer : rep->taps) {
    const auto mapped = id_map.find(transfer.source_id);
    if (mapped == id_map.end()) {
      return Status::Internal("cell migration tap query " +
                              std::to_string(transfer.source_id) +
                              " has no id mapping");
    }
    auto query_it = queries_.find(mapped->second);
    if (query_it == queries_.end()) {
      return Status::Internal("cell migration targets dead local query " +
                              std::to_string(mapped->second));
    }
    QueryState& qs = query_it->second;
    if (transfer.tap.partition != nullptr && transfer.tap.shared) {
      // Shared carve-out: the sharer's edge hangs off the splitter that
      // travelled inside the payload. Locate its entry by the P pointer.
      auto chain_it = cell->chains.find(qs.stream.attribute);
      SharedPartition* entry = nullptr;
      if (chain_it != cell->chains.end()) {
        for (ThinNode& node : chain_it->second.thins) {
          entry = FindShare(node, transfer.tap.partition);
          if (entry != nullptr) {
            break;
          }
        }
      }
      if (entry == nullptr) {
        return Status::Internal("adopted shared tap for query " +
                                std::to_string(mapped->second) +
                                " has no carve-out record");
      }
      entry->splitter->AddOutput(qs.merge_head);
    } else if (transfer.tap.partition != nullptr) {
      // Port 0 of the P operator is the overlap region (InsertTap); with
      // the merge edge removed it is the only output being re-added, so
      // the port assignment is restored exactly.
      transfer.tap.partition->AddOutput(qs.merge_head);
    } else {
      // Covering tap: reconnect from the T this query taps.
      auto chain_it = cell->chains.find(qs.stream.attribute);
      if (chain_it == cell->chains.end()) {
        return Status::Internal("cell migration tap chain missing for query " +
                                std::to_string(mapped->second));
      }
      ops::ThinOperator* source = nullptr;
      for (ThinNode& node : chain_it->second.thins) {
        if (std::find(node.tap_queries.begin(), node.tap_queries.end(),
                      mapped->second) != node.tap_queries.end()) {
          source = node.op;
          break;
        }
      }
      if (source == nullptr) {
        return Status::Internal("cell migration tap T missing for query " +
                                std::to_string(mapped->second));
      }
      source->AddOutput(qs.merge_head);
    }
    qs.taps.push_back(transfer.tap);
  }
  Cell* adopted =
      cells_.emplace(index, std::move(rep->cell)).first->second.get();
  // Adopted chains enter this fabricator's route LUT incrementally (their
  // route_bucket fields are source-local garbage — reset first).
  for (auto& [attribute, chain] : adopted->chains) {
    chain.route_bucket = 0;
    RouteNoteChainAdded(chain.flat_cell, attribute, &chain);
  }
  return Status::OK();
}

Status StreamFabricator::RemoveTap(QueryState* qs, const Tap& tap) {
  auto cell_it = cells_.find(tap.cell);
  if (cell_it == cells_.end()) {
    return Status::Internal("tap references unmaterialized cell " +
                            tap.cell.ToString());
  }
  Cell* cell = cell_it->second.get();
  auto chain_it = cell->chains.find(qs->stream.attribute);
  if (chain_it == cell->chains.end()) {
    return Status::Internal("tap references missing chain in cell " +
                            tap.cell.ToString());
  }
  Chain* chain = &chain_it->second;

  // Find the T this query taps.
  std::size_t pos = chain->thins.size();
  for (std::size_t i = 0; i < chain->thins.size(); ++i) {
    auto& queries = chain->thins[i].tap_queries;
    const auto it = std::find(queries.begin(), queries.end(), qs->stream.id);
    if (it != queries.end()) {
      queries.erase(it);
      pos = i;
      break;
    }
  }
  if (pos == chain->thins.size()) {
    return Status::Internal("query tap not found in chain");
  }
  ThinNode& node = chain->thins[pos];

  // Unwire the tap edge (right-to-left: stream endpoint first).
  ++taps_detached_;
  if (obs_taps_detached_ != nullptr) {
    obs_taps_detached_->Increment();
  }
  if (tap.partition != nullptr) {
    SharedPartition* entry =
        tap.shared ? FindShare(node, tap.partition) : nullptr;
    if (tap.shared && entry == nullptr) {
      return Status::Internal("shared tap lost its carve-out record");
    }
    if (entry != nullptr) {
      // Ref-counted shared carve-out: detach only this sharer's splitter
      // edge — the unshared suffix. The P + splitter survive (and keep
      // every other sharer's stream untouched) until the last sharer
      // leaves.
      entry->splitter->RemoveOutput(qs->merge_head);
      const auto sharer = std::find(entry->sharers.begin(),
                                    entry->sharers.end(), qs->stream.id);
      if (sharer == entry->sharers.end()) {
        return Status::Internal("shared carve-out missing its sharer record");
      }
      entry->sharers.erase(sharer);
      if (entry->sharers.empty()) {
        node.op->RemoveOutput(entry->op);
        entry->op->RemoveOutput(entry->splitter);
        cell->pipeline.Remove(entry->splitter);
        cell->pipeline.Remove(entry->op);
        node.partitions.erase(
            node.partitions.begin() + (entry - node.partitions.data()));
      }
    } else {
      node.op->RemoveOutput(tap.partition);
      cell->pipeline.Remove(tap.partition);
    }
  } else {
    node.op->RemoveOutput(qs->merge_head);
  }

  // "If two consecutive T-operators are created in this process, then they
  // are merged to form a single T-operator" — a tap-less T either merges
  // with its successor or, when last, disappears.
  if (node.tap_queries.empty()) {
    ops::Operator* prev =
        pos == 0 ? static_cast<ops::Operator*>(chain->flatten)
                 : static_cast<ops::Operator*>(chain->thins[pos - 1].op);
    const double input_rate = ThinInputRate(*chain, pos);
    if (pos + 1 < chain->thins.size()) {
      ThinNode& next = chain->thins[pos + 1];
      node.op->RemoveOutput(next.op);
      prev->RemoveOutput(node.op);
      prev->AddOutput(next.op);
      CRAQR_RETURN_NOT_OK(next.op->UpdateRates(input_rate, next.out_rate));
    } else {
      prev->RemoveOutput(node.op);
    }
    cell->pipeline.Remove(node.op);
    chain->thins.erase(chain->thins.begin() +
                       static_cast<std::ptrdiff_t>(pos));
  }

  if (chain->thins.empty()) {
    // Continue right-to-left: the F operator and finally the hashmap key.
    RouteNoteChainRemoved(chain, qs->stream.attribute);
    cell->pipeline.Remove(chain->flatten);
    cell->chains.erase(chain_it);
    if (cell->chains.empty()) {
      cells_.erase(cell_it);
    }
    return Status::OK();
  }

  // Optionally relax the F target down to the new first T (keeps the
  // acquisition budget honest after high-rate queries leave).
  const double desired_target = config_.headroom * chain->thins[0].out_rate;
  if (desired_target < chain->f_target) {
    CRAQR_RETURN_NOT_OK(chain->flatten->SetTargetRate(desired_target));
    chain->f_target = desired_target;
    CRAQR_RETURN_NOT_OK(chain->thins[0].op->UpdateRates(
        desired_target, chain->thins[0].out_rate));
  }
  return Status::OK();
}

Status StreamFabricator::RemoveQuery(query::QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  QueryState& qs = it->second;
  for (const Tap& tap : qs.taps) {
    CRAQR_RETURN_NOT_OK(RemoveTap(&qs, tap));
  }
  queries_.erase(it);
  return Status::OK();
}

StreamFabricator::Chain* StreamFabricator::RouteTarget(
    double x, double y, ops::AttributeId attribute) {
  const auto index = grid_.CellContaining(x, y);
  if (!index.has_value()) {
    ++tuples_unrouted_;
    return nullptr;
  }
  const auto cell_it = cells_.find(*index);
  if (cell_it == cells_.end()) {
    ++tuples_unrouted_;
    return nullptr;
  }
  const auto chain_it = cell_it->second->chains.find(attribute);
  if (chain_it == cell_it->second->chains.end()) {
    ++tuples_unrouted_;
    return nullptr;
  }
  ++tuples_routed_;
  Chain* chain = &chain_it->second;
  if (cell_routed_ != nullptr && obs::IsEnabled()) {
    cell_routed_->Add(chain->flat_cell, 1);
  }
  return chain;
}

Status StreamFabricator::ProcessTuple(const ops::Tuple& tuple) {
  Chain* chain = RouteTarget(tuple.point.x, tuple.point.y, tuple.attribute);
  if (chain == nullptr) {
    return Status::OK();
  }
  return chain->flatten->Push(tuple);
}

void StreamFabricator::RebuildRouteTable() {
  route_dirty_ = false;
  ++route_rebuilds_;
  route_attrs_.clear();
  route_chains_.clear();
  route_lut_.clear();
  route_holes_ = 0;
  // Deterministic bucket enumeration: (flat cell, attribute) ascending,
  // independent of hashmap iteration order, so the dispatch order of the
  // grouped copies is reproducible run to run.
  std::vector<std::tuple<std::uint32_t, ops::AttributeId, Chain*>> entries;
  for (auto& [index, cell] : cells_) {
    for (auto& [attribute, chain] : cell->chains) {
      entries.emplace_back(grid_.FlatIndex(index), attribute, &chain);
      route_attrs_.push_back(attribute);
    }
  }
  std::sort(route_attrs_.begin(), route_attrs_.end());
  route_attrs_.erase(std::unique(route_attrs_.begin(), route_attrs_.end()),
                     route_attrs_.end());
  const std::uint64_t rows = static_cast<std::uint64_t>(grid_.NumCells()) + 1;
  const std::uint64_t cols = route_attrs_.size() + 1;
  route_lut_enabled_ = !entries.empty() &&
                       rows * cols <= kMaxRouteLutEntries &&
                       route_attrs_.size() <= kMaxRouteSlotScan;
  if (!route_lut_enabled_) {
    return;
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return std::make_pair(std::get<0>(a), std::get<1>(a)) <
                     std::make_pair(std::get<0>(b), std::get<1>(b));
            });
  // Every slot starts as bucket 0, the unrouted sentinel; the sentinel
  // row (invalid cell) and column (unknown attribute) stay that way, so
  // the router resolves every row with one unconditional load. Live
  // chains occupy buckets 1..n — appending a chain later is one slot
  // write (RouteNoteChainAdded), not a table sweep.
  route_lut_.assign(rows * cols, 0u);
  route_chains_.assign(1, nullptr);
  route_chains_.reserve(entries.size() + 1);
  for (const auto& [flat, attribute, chain] : entries) {
    const auto slot = static_cast<std::uint32_t>(
        std::lower_bound(route_attrs_.begin(), route_attrs_.end(),
                         attribute) -
        route_attrs_.begin());
    chain->route_bucket = static_cast<std::uint32_t>(route_chains_.size());
    route_lut_[flat * cols + slot] = chain->route_bucket;
    route_chains_.push_back(chain);
  }
}

void StreamFabricator::RouteNoteChainAdded(std::uint32_t flat,
                                           ops::AttributeId attribute,
                                           Chain* chain) {
  if (route_dirty_) {
    return;  // a full rebuild is already pending
  }
  if (!route_lut_enabled_) {
    // Either no table yet (first chain ever) or the fallback router is
    // active; let the next batch decide with a full rebuild.
    route_dirty_ = true;
    return;
  }
  const auto slot_it = std::lower_bound(route_attrs_.begin(),
                                        route_attrs_.end(), attribute);
  if (slot_it == route_attrs_.end() || *slot_it != attribute) {
    // Attribute-slot-set change: the table needs a new column — the one
    // case the incremental path cannot patch.
    route_dirty_ = true;
    return;
  }
  const auto slot = static_cast<std::uint32_t>(slot_it - route_attrs_.begin());
  const std::uint32_t cols =
      static_cast<std::uint32_t>(route_attrs_.size()) + 1;
  chain->route_bucket = static_cast<std::uint32_t>(route_chains_.size());
  route_chains_.push_back(chain);
  route_lut_[flat * cols + slot] = chain->route_bucket;
  ++route_patches_;
}

void StreamFabricator::RouteNoteChainRemoved(Chain* chain,
                                             ops::AttributeId attribute) {
  if (route_dirty_ || !route_lut_enabled_) {
    return;  // nothing live to patch
  }
  const auto slot_it = std::lower_bound(route_attrs_.begin(),
                                        route_attrs_.end(), attribute);
  const std::uint32_t bucket = chain->route_bucket;
  if (slot_it == route_attrs_.end() || *slot_it != attribute ||
      bucket == 0 || bucket >= route_chains_.size() ||
      route_chains_[bucket] != chain) {
    // Inconsistent incremental state (e.g. a chain created while the
    // fallback router was active); resynchronize with a full rebuild.
    route_dirty_ = true;
    return;
  }
  const auto slot = static_cast<std::uint32_t>(slot_it - route_attrs_.begin());
  const std::uint32_t cols =
      static_cast<std::uint32_t>(route_attrs_.size()) + 1;
  route_lut_[chain->flat_cell * cols + slot] = 0;
  route_chains_[bucket] = nullptr;
  chain->route_bucket = 0;
  ++route_holes_;
  ++route_patches_;
  // Compact once holes dominate: the histogram pass costs O(buckets) per
  // batch, so a mostly-hole table wastes count/prefix-sum work.
  if (route_holes_ * 2 > route_chains_.size() && route_chains_.size() > 64) {
    route_dirty_ = true;
  }
}

void StreamFabricator::RouteBatchFallback(ops::TupleBatch& batch) {
  // Per-row map routing; matched rows column-copy (56 flat bytes) into
  // the owning chain's recycled inbox in first-touch order.
  const auto n = static_cast<std::uint32_t>(batch.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    const geom::SpaceTimePoint& p = batch.point_at(i);
    Chain* chain = RouteTarget(p.x, p.y, batch.attribute_at(i));
    if (chain == nullptr) {
      continue;
    }
    if (chain->inbox.empty()) {
      batch_touched_.push_back(chain);
    }
    chain->inbox.AppendRow(batch, i);
  }
}

void StreamFabricator::RouteBatch(ops::TupleBatch& batch) {
  // Single-pass histogram routing over the point/attribute columns:
  // (1) resolve every row's flat cell (branch-free column sweep), (2)
  // resolve every row's bucket with one load from the dense
  // (cell, attribute) table, (3) count -> prefix-sum -> scatter groups
  // the row indices by bucket, and (4) each touched chain receives its
  // whole group as one column-wise AppendRows splice. No per-row hashmap
  // lookup, no per-row dispatch branch. Falls back to per-row map
  // routing only when the dense table would be oversized.
  batch.Materialize();
  if (route_dirty_) {
    RebuildRouteTable();
  }
  const auto n = static_cast<std::uint32_t>(batch.size());
  if (!route_lut_enabled_) {
    if (!cells_.empty() && n > 0) {
      // Expected only for oversized grid x attribute tables; worth a
      // (rate-limited) heads-up because per-row routing is much slower.
      CRAQR_LOG_EVERY_N(WARNING, 4096)
          << "histogram route LUT disabled; using per-row fallback routing";
    }
    RouteBatchFallback(batch);
  } else if (n > 0) {
    const Span<const geom::SpaceTimePoint> points = batch.Points();
    const Span<const ops::AttributeId> attrs = batch.Attributes();
    row_cells_.resize(n);
    grid_.FillFlatCells(points, row_cells_.data(),
                        /*invalid_value=*/grid_.NumCells());
    const auto nslots = static_cast<std::uint32_t>(route_attrs_.size());
    const std::uint32_t cols = nslots + 1;
    const auto nbuckets = static_cast<std::uint32_t>(route_chains_.size());
    const ops::AttributeId* slot_attrs = route_attrs_.data();
    row_buckets_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      const ops::AttributeId attribute = attrs[i];
      // Branch-free slot scan over the handful of live attributes;
      // misses keep the sentinel column.
      std::uint32_t slot = nslots;
      for (std::uint32_t s = 0; s < nslots; ++s) {
        slot = slot_attrs[s] == attribute ? s : slot;
      }
      row_buckets_[i] = route_lut_[row_cells_[i] * cols + slot];
    }
    bucket_counts_.assign(nbuckets, 0);
    grouped_rows_.resize(n);
    simd::HistogramGroup({row_buckets_.data(), n},
                         {bucket_counts_.data(), nbuckets},
                         grouped_rows_.data());
    // Bucket 0 groups the unrouted rows (sentinel slots and the cleared
    // slots of evicted chains); live chains follow in buckets 1..n.
    const std::uint32_t unrouted = bucket_counts_[0];
    std::uint32_t begin = unrouted;
    for (std::uint32_t b = 1; b < nbuckets; ++b) {
      const std::uint32_t end = bucket_counts_[b];
      Chain* chain = route_chains_[b];
      if (end != begin && chain != nullptr) {
        chain->inbox.AppendRows(
            batch, {grouped_rows_.data() + begin, end - begin});
        batch_touched_.push_back(chain);
        // Hot-cell telemetry: one bank add per touched chain per batch,
        // not per row.
        if (cell_routed_ != nullptr && obs::IsEnabled()) {
          cell_routed_->Add(chain->flat_cell, end - begin);
        }
      }
      begin = end;
    }
    tuples_routed_ += n - unrouted;
    tuples_unrouted_ += unrouted;
  }
  batch.Clear();
}

Status StreamFabricator::ProcessBatch(ops::TupleBatch& batch) {
  RouteBatch(batch);
  return DispatchInboxesAndFlush();
}

Status StreamFabricator::ProcessBatch(const std::vector<ops::Tuple>& batch) {
  // Convenience path (tests, benches): one scatter, then the hot overload.
  ops::TupleBatch columns(batch);
  return ProcessBatch(columns);
}

Result<std::size_t> StreamFabricator::BeginDispatch(ops::TupleBatch& batch) {
  if (!dispatch_jobs_.empty()) {
    return Status::FailedPrecondition("a cooperative dispatch is already open");
  }
  RouteBatch(batch);
  BuildDispatchJobs();
  return dispatch_jobs_.size();
}

void StreamFabricator::BuildDispatchJobs() {
  const std::size_t n = batch_touched_.size();
  if (n == 0) {
    return;
  }
  // Union-find (path halving) over the touched chains: chains sharing a
  // tapping query are united, because their partial streams converge in
  // that query's merge head — one thread per merge head, or deliveries
  // race. Chains only ever tapped by disjoint query sets stay in
  // independent jobs.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) {
    parent[i] = i;
  }
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::unordered_map<query::QueryId, std::size_t> query_owner;
  for (std::size_t i = 0; i < n; ++i) {
    for (const ThinNode& node : batch_touched_[i]->thins) {
      for (const query::QueryId qid : node.tap_queries) {
        const auto [it, inserted] = query_owner.emplace(qid, i);
        if (!inserted) {
          parent[find(i)] = find(it->second);
        }
      }
    }
  }
  // Emit jobs in first-touch order of each group's earliest chain, chains
  // within a job keeping their routing order — so a job replays exactly
  // the subsequence of the sequential dispatch it owns.
  std::unordered_map<std::size_t, std::size_t> job_of_root;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    const auto [it, inserted] =
        job_of_root.emplace(root, dispatch_jobs_.size());
    if (inserted) {
      dispatch_jobs_.emplace_back();
    }
    dispatch_jobs_[it->second].push_back(batch_touched_[i]);
  }
}

Status StreamFabricator::RunDispatchJob(std::size_t job) {
  if (job >= dispatch_jobs_.size()) {
    return Status::InvalidArgument("dispatch job out of range");
  }
  Status status = Status::OK();
  for (Chain* chain : dispatch_jobs_[job]) {
    if (status.ok()) {
      status = chain->flatten->PushBatch(chain->inbox);
    }
    // Drained even on error so no tuple leaks into the next batch.
    chain->inbox.Clear();
  }
  return status;
}

Status StreamFabricator::FinishDispatch() {
  dispatch_jobs_.clear();
  // Cleared before FlushAll: a violation callback replayed there may
  // re-enter with topology surgery that deletes chains.
  batch_touched_.clear();
  return FlushAll();
}

Status StreamFabricator::DispatchInboxesAndFlush() {
  Status status = Status::OK();
  for (Chain* chain : batch_touched_) {
    if (status.ok()) {
      status = chain->flatten->PushBatch(chain->inbox);
    }
    // Drained even on error so no tuple leaks into the next batch.
    chain->inbox.Clear();
  }
  // Cleared before FlushAll: a violation callback replayed there may
  // re-enter with topology surgery that deletes chains.
  batch_touched_.clear();
  CRAQR_RETURN_NOT_OK(status);
  return FlushAll();
}

Status StreamFabricator::FlushAll() {
  for (auto& [index, cell] : cells_) {
    (void)index;
    CRAQR_RETURN_NOT_OK(cell->pipeline.FlushAll());
  }
  for (auto& [id, qs] : queries_) {
    (void)id;
    CRAQR_RETURN_NOT_OK(qs.merge_pipeline.FlushAll());
  }
  ReplayPendingViolations();
  return Status::OK();
}

void StreamFabricator::ReplayPendingViolations() {
  std::vector<PendingViolation> events;
  {
    std::lock_guard<std::mutex> lock(violations_mu_);
    events.swap(pending_violations_);
  }
  if (events.empty()) {
    return;
  }
  // Canonical replay order (ViolationReplayLess). Stable, so one F
  // operator's reports keep their firing order. The sharded runtime
  // sorts its cross-shard replay with the same comparator, which is what
  // makes feedback consumers (budget tuning, incentives) evolve
  // identically for every shard count.
  std::stable_sort(events.begin(), events.end(),
                   [](const PendingViolation& a, const PendingViolation& b) {
                     return ViolationReplayLess(
                         {a.report.completed_at, a.attribute, a.cell},
                         {b.report.completed_at, b.attribute, b.cell});
                   });
  // The callback is user code and may re-enter the fabricator (the local
  // copy of the event list keeps the replay safe).
  const ViolationCallback callback = violation_callback_;
  if (callback) {
    for (const PendingViolation& event : events) {
      callback(event.attribute, event.cell, event.report);
    }
  }
}

Result<QueryStream> StreamFabricator::GetStream(query::QueryId id) const {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  return it->second.stream;
}

Result<std::vector<geom::CellIndex>> StreamFabricator::QueryCells(
    query::QueryId id) const {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  std::vector<geom::CellIndex> cells;
  cells.reserve(it->second.taps.size());
  for (const Tap& tap : it->second.taps) {
    cells.push_back(tap.cell);
  }
  return cells;
}

std::size_t StreamFabricator::SharedStagesLive() const {
  std::size_t shared = 0;
  for (const auto& [index, cell] : cells_) {
    (void)index;
    for (const auto& [attribute, chain] : cell->chains) {
      (void)attribute;
      for (const ThinNode& node : chain.thins) {
        if (node.tap_queries.size() >= 2) {
          ++shared;
        }
        for (const SharedPartition& entry : node.partitions) {
          if (entry.sharers.size() >= 2) {
            ++shared;
          }
        }
      }
    }
  }
  return shared;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
StreamFabricator::SharedStageCensus() const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> census;
  for (const auto& [index, cell] : cells_) {
    (void)index;
    std::uint32_t shared = 0;
    std::uint32_t flat = 0;
    for (const auto& [attribute, chain] : cell->chains) {
      (void)attribute;
      flat = chain.flat_cell;
      for (const ThinNode& node : chain.thins) {
        if (node.tap_queries.size() >= 2) {
          ++shared;
        }
        for (const SharedPartition& entry : node.partitions) {
          if (entry.sharers.size() >= 2) {
            ++shared;
          }
        }
      }
    }
    if (shared > 0) {
      census.emplace_back(flat, shared);
    }
  }
  std::sort(census.begin(), census.end());
  return census;
}

std::size_t StreamFabricator::TotalOperators() const {
  std::size_t total = 0;
  for (const auto& [index, cell] : cells_) {
    (void)index;
    total += cell->pipeline.size();
  }
  for (const auto& [id, qs] : queries_) {
    (void)id;
    total += qs.merge_pipeline.size();
  }
  return total;
}

std::uint64_t StreamFabricator::TotalOperatorEvaluations() const {
  std::uint64_t total = 0;
  for (const auto& [index, cell] : cells_) {
    (void)index;
    total += cell->pipeline.TotalOperatorEvaluations();
  }
  for (const auto& [id, qs] : queries_) {
    (void)id;
    total += qs.merge_pipeline.TotalOperatorEvaluations();
  }
  return total;
}

void StreamFabricator::VisitOperators(
    const std::function<void(const ops::Operator&)>& visitor) const {
  for (const auto& [index, cell] : cells_) {
    (void)index;
    for (const auto& op : cell->pipeline.operators()) {
      visitor(*op);
    }
  }
  for (const auto& [id, qs] : queries_) {
    (void)id;
    for (const auto& op : qs.merge_pipeline.operators()) {
      visitor(*op);
    }
  }
}

void StreamFabricator::ReinternStrings(ops::ValuePool& pool) {
  for (auto& [index, cell] : cells_) {
    (void)index;
    for (const auto& op : cell->pipeline.operators()) {
      op->ReinternStrings(pool);
    }
    for (auto& [attribute, chain] : cell->chains) {
      (void)attribute;
      chain.inbox.ReinternStrings(pool);
    }
  }
  for (auto& [id, qs] : queries_) {
    (void)id;
    for (const auto& op : qs.merge_pipeline.operators()) {
      op->ReinternStrings(pool);
    }
  }
}

void StreamFabricator::TrimMemory() {
  for (auto& [index, cell] : cells_) {
    (void)index;
    for (auto& [attribute, chain] : cell->chains) {
      (void)attribute;
      // Inboxes are drained between batches; drop their recycled slack.
      chain.inbox.ShrinkToFit();
    }
  }
  row_cells_.shrink_to_fit();
  row_buckets_.shrink_to_fit();
  bucket_counts_.shrink_to_fit();
  grouped_rows_.shrink_to_fit();
}

std::size_t StreamFabricator::BatchMemoryBytes() const {
  std::size_t bytes = 0;
  for (const auto& [index, cell] : cells_) {
    (void)index;
    for (const auto& [attribute, chain] : cell->chains) {
      (void)attribute;
      bytes += chain.inbox.ApproxBytes();
    }
  }
  bytes += (row_cells_.capacity() + row_buckets_.capacity() +
            bucket_counts_.capacity() + grouped_rows_.capacity()) *
           sizeof(std::uint32_t);
  return bytes;
}

namespace {

bool HasEdge(const ops::Operator* from, const ops::Operator* to) {
  for (const ops::Operator* out : from->outputs()) {
    if (out == to) {
      return true;
    }
  }
  return false;
}

}  // namespace

Status StreamFabricator::ValidateInvariants() const {
  const auto fail = [](const std::string& what) {
    return Status::Internal("topology invariant violated: " + what);
  };
  for (const auto& [index, cell] : cells_) {
    if (cell->chains.empty()) {
      return fail("cell " + index.ToString() +
                  " is materialized but has no chains");
    }
    for (const auto& [attribute, chain] : cell->chains) {
      const std::string where =
          "cell " + index.ToString() + " A<" + std::to_string(attribute) + ">";
      if (chain.flatten == nullptr) {
        return fail(where + " has no F operator");
      }
      if (chain.thins.empty()) {
        return fail(where + " has an F but no T (should have been evicted)");
      }
      if (std::fabs(chain.flatten->target_rate() - chain.f_target) >
          1e-9 * std::max(1.0, chain.f_target)) {
        return fail(where + " F target drifted from the chain record");
      }
      // Rule 3: F output rate strictly above the first T's output rate.
      if (!(chain.f_target > chain.thins[0].out_rate)) {
        return fail(where + " F target does not exceed the first T rate");
      }
      if (!HasEdge(chain.flatten, chain.thins[0].op)) {
        return fail(where + " missing F -> first T edge");
      }
      for (std::size_t i = 0; i < chain.thins.size(); ++i) {
        const ThinNode& node = chain.thins[i];
        // Rule 1: strictly descending output rates.
        if (i + 1 < chain.thins.size() &&
            !(node.out_rate > chain.thins[i + 1].out_rate)) {
          return fail(where + " T chain is not strictly descending");
        }
        // Rule 2 / deletion re-merge: no tap-less T survives.
        if (node.tap_queries.empty()) {
          return fail(where + " has a T with no query taps");
        }
        const double expected_input = ThinInputRate(chain, i);
        if (std::fabs(node.op->input_rate() - expected_input) >
            1e-9 * std::max(1.0, expected_input)) {
          return fail(where + " T input rate mismatches its upstream");
        }
        if (std::fabs(node.op->output_rate() - node.out_rate) >
            1e-9 * std::max(1.0, node.out_rate)) {
          return fail(where + " T output rate drifted from the chain record");
        }
        const bool has_next = i + 1 < chain.thins.size();
        if (has_next && !HasEdge(node.op, chain.thins[i + 1].op)) {
          return fail(where + " missing T -> T edge");
        }
        // Shared carve-outs: every entry is one T output edge no matter
        // how many queries share it, and its ref count (the sharer list)
        // must stay consistent with the node's tap registry.
        std::size_t shared_sharers = 0;
        for (const SharedPartition& entry : node.partitions) {
          if (entry.op == nullptr || entry.splitter == nullptr) {
            return fail(where + " shared carve-out missing its P/splitter");
          }
          if (entry.sharers.empty()) {
            return fail(where + " shared carve-out with zero ref count");
          }
          if (!HasEdge(node.op, entry.op)) {
            return fail(where + " missing T -> shared P edge");
          }
          if (!HasEdge(entry.op, entry.splitter)) {
            return fail(where + " missing shared P -> splitter edge");
          }
          if (entry.splitter->outputs().size() != entry.sharers.size()) {
            return fail(where + " splitter fan-out mismatches the ref count");
          }
          for (const query::QueryId id : entry.sharers) {
            if (std::find(node.tap_queries.begin(), node.tap_queries.end(),
                          id) == node.tap_queries.end()) {
              return fail(where + " shared carve-out sharer is not a tapper");
            }
          }
          shared_sharers += entry.sharers.size();
        }
        // Each sharer reaches the merge stage through its entry's single
        // T -> P edge; every other tapper (covering or unshared-partial)
        // holds one direct edge.
        const std::size_t expected_outputs = node.tap_queries.size() -
                                             shared_sharers +
                                             node.partitions.size() +
                                             (has_next ? 1u : 0u);
        if (node.op->outputs().size() != expected_outputs) {
          return fail(where + " T has " +
                      std::to_string(node.op->outputs().size()) +
                      " outputs, expected " +
                      std::to_string(expected_outputs));
        }
        for (const query::QueryId id : node.tap_queries) {
          if (queries_.find(id) == queries_.end()) {
            return fail(where + " taps a dead query");
          }
        }
      }
    }
  }
  // Every live query's taps must resolve to live chains with live edges.
  for (const auto& [id, qs] : queries_) {
    for (const Tap& tap : qs.taps) {
      const auto cell_it = cells_.find(tap.cell);
      if (cell_it == cells_.end()) {
        return fail("query " + std::to_string(id) +
                    " taps unmaterialized cell " + tap.cell.ToString());
      }
      const auto chain_it =
          cell_it->second->chains.find(qs.stream.attribute);
      if (chain_it == cell_it->second->chains.end()) {
        return fail("query " + std::to_string(id) +
                    " taps a missing chain in " + tap.cell.ToString());
      }
      const ThinNode* source = nullptr;
      for (const ThinNode& node : chain_it->second.thins) {
        if (std::find(node.tap_queries.begin(), node.tap_queries.end(), id) !=
            node.tap_queries.end()) {
          source = &node;
          break;
        }
      }
      if (source == nullptr) {
        return fail("query " + std::to_string(id) + " has no tap T in " +
                    tap.cell.ToString());
      }
      const ops::Operator* hop =
          tap.partition != nullptr
              ? static_cast<const ops::Operator*>(tap.partition)
              : static_cast<const ops::Operator*>(qs.merge_head);
      if (!HasEdge(source->op, hop)) {
        return fail("query " + std::to_string(id) + " missing tap edge in " +
                    tap.cell.ToString());
      }
      if (tap.shared) {
        // Shared carve-out: the query reaches its merge head through the
        // entry's splitter, and must be on the entry's sharer list.
        const SharedPartition* entry = nullptr;
        for (const SharedPartition& candidate : source->partitions) {
          if (candidate.op == tap.partition) {
            entry = &candidate;
            break;
          }
        }
        if (entry == nullptr) {
          return fail("query " + std::to_string(id) +
                      " shared tap has no carve-out entry in " +
                      tap.cell.ToString());
        }
        if (std::find(entry->sharers.begin(), entry->sharers.end(), id) ==
            entry->sharers.end()) {
          return fail("query " + std::to_string(id) +
                      " missing from its carve-out ref count in " +
                      tap.cell.ToString());
        }
        if (!HasEdge(entry->splitter, qs.merge_head)) {
          return fail("query " + std::to_string(id) +
                      " missing splitter -> merge edge in " +
                      tap.cell.ToString());
        }
      } else if (tap.partition != nullptr &&
                 !HasEdge(tap.partition, qs.merge_head)) {
        return fail("query " + std::to_string(id) +
                    " missing P -> merge edge in " + tap.cell.ToString());
      }
    }
  }
  // Counter conservation: the batch path must account tuples_in/out
  // exactly like the per-tuple path on every operator...
  Status stats_status = Status::OK();
  VisitOperators([&stats_status](const ops::Operator& op) {
    if (stats_status.ok()) {
      stats_status = ops::ValidateStatsConservation(op);
    }
  });
  CRAQR_RETURN_NOT_OK(stats_status);
  // ...and across merge-stage edges, which are created atomically with
  // the stage (ValidateMergeStageCounters).
  for (const auto& [id, qs] : queries_) {
    (void)id;
    CRAQR_RETURN_NOT_OK(ValidateMergeStageCounters(qs.stream, *qs.merge_head));
  }
  return Status::OK();
}

std::string StreamFabricator::DescribeTopology() const {
  std::ostringstream os;
  // Deterministic ordering for tests and the Fig-2 bench.
  std::map<std::pair<std::uint32_t, std::uint32_t>, const Cell*> ordered;
  for (const auto& [index, cell] : cells_) {
    ordered.emplace(std::make_pair(index.q, index.r), cell.get());
  }
  for (const auto& [qr, cell] : ordered) {
    os << "cell (" << qr.first << "," << qr.second << "):\n";
    std::map<ops::AttributeId, const Chain*> chains;
    for (const auto& [attribute, chain] : cell->chains) {
      chains.emplace(attribute, &chain);
    }
    for (const auto& [attribute, chain] : chains) {
      os << "  A<" << attribute << ">: F(out=" << chain->f_target << ")";
      for (const auto& node : chain->thins) {
        os << " -> T(->" << node.out_rate << ")[";
        for (std::size_t i = 0; i < node.tap_queries.size(); ++i) {
          os << (i > 0 ? "," : "") << "Q" << node.tap_queries[i];
        }
        os << "]";
        for (const SharedPartition& entry : node.partitions) {
          os << "{P " << entry.region.ToString() << " <-";
          for (std::size_t i = 0; i < entry.sharers.size(); ++i) {
            os << (i > 0 ? "," : "") << "Q" << entry.sharers[i];
          }
          os << "}";
        }
      }
      os << "\n";
    }
  }
  std::map<query::QueryId, const QueryState*> ordered_queries;
  for (const auto& [id, qs] : queries_) {
    ordered_queries.emplace(id, &qs);
  }
  for (const auto& [id, qs] : ordered_queries) {
    os << "Q" << id << ": " << qs->taps.size() << " cell stream(s) -> "
       << (qs->merge_head->kind() == ops::OperatorKind::kUnion ? "U" : "Id")
       << " -> Mon -> Sink, rate=" << qs->stream.rate << " on "
       << qs->stream.region.ToString() << "\n";
  }
  return os.str();
}

}  // namespace fabric
}  // namespace craqr
