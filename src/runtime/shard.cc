#include "runtime/shard.h"

#include <chrono>
#include <exception>
#include <future>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "runtime/faultpoint.h"

namespace craqr {
namespace runtime {

Result<std::unique_ptr<Shard>> Shard::Make(
    std::size_t index, const geom::Grid& grid,
    const fabric::FabricConfig& config, std::size_t queue_capacity,
    const std::string& metrics_scope, std::size_t trace_capacity,
    std::shared_ptr<StealDomain> steal_domain) {
  if (queue_capacity < 1) {
    return Status::InvalidArgument("shard queue capacity must be >= 1");
  }
  CRAQR_ASSIGN_OR_RETURN(auto fabricator,
                         fabric::StreamFabricator::Make(grid, config));
  // Standalone shards (no router) get their own runtime instance scope so
  // two of them never alias each other's registry counters.
  const std::string scope =
      metrics_scope.empty()
          ? "craqr.rt" +
                std::to_string(obs::Registry::Global().NextInstanceId())
          : metrics_scope;
  auto shard = std::unique_ptr<Shard>(
      new Shard(index, grid, config, std::move(fabricator), queue_capacity,
                scope, trace_capacity));
  // Enroll in the work-stealing group before the worker starts: peers
  // must only ever observe fully constructed members.
  shard->steal_domain_ = std::move(steal_domain);
  if (shard->steal_domain_ != nullptr) {
    shard->steal_domain_->Register(shard.get());
  }
  // F-operator reports fire on the worker thread mid-batch; buffer them in
  // the outbox so the router can replay them single-threaded. The epoch of
  // the in-flight batch task rides along so replay can be held back to an
  // epoch horizon (pipelined engine feedback contract).
  Shard* raw = shard.get();
  shard->fabricator_->SetViolationCallback(
      [raw](ops::AttributeId attribute, const geom::CellIndex& cell,
            const ops::FlattenBatchReport& report) {
        std::lock_guard<std::mutex> lock(raw->outbox_mu_);
        raw->outbox_.violations.push_back(
            {attribute, cell, report, raw->current_epoch_});
      });
  shard->worker_ = std::thread([raw] { raw->WorkerLoop(); });
  return shard;
}

Shard::Shard(std::size_t index, const geom::Grid& grid,
             const fabric::FabricConfig& config,
             std::unique_ptr<fabric::StreamFabricator> fabricator,
             std::size_t queue_capacity, const std::string& metrics_scope,
             std::size_t trace_capacity)
    : index_(index),
      fabricator_(std::move(fabricator)),
      grid_(grid),
      fabric_config_(config),
      queue_(queue_capacity) {
  // Registry lookups happen once here; the worker loop then writes
  // through the cached pointers lock-free.
  const std::string base = metrics_scope + ".shard" + std::to_string(index);
  batches_processed_ = obs::GetCounter(base + ".batches_processed");
  tuples_processed_ = obs::GetCounter(base + ".tuples_processed");
  busy_ns_ = obs::GetCounter(base + ".busy_ns");
  steals_ = obs::GetCounter(base + ".steals");
  queue_wait_ns_ = obs::GetHistogram(base + ".queue_wait_ns");
  process_ns_ = obs::GetHistogram(base + ".process_ns");
  batch_latency_ns_ = obs::GetHistogram(base + ".batch_latency_ns");
  trace_ = obs::Tracer::Global().CreateRing(base, trace_capacity);
}

Shard::~Shard() { Stop(); }

void Shard::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  queue_.Close();
  if (steal_domain_ != nullptr) {
    // Wake idle workers so they observe the closed queue and exit.
    steal_domain_->Signal();
  }
  if (worker_.joinable()) {
    worker_.join();
  }
}

Shard::Task Shard::MakeBatchTask(ops::TupleBatch batch, std::uint64_t epoch) {
  Task task;
  task.batch = std::move(batch);
  task.epoch = epoch;
  // Timestamp for the queue-wait / enqueue->drain histograms; one clock
  // read per sub-batch, skipped entirely when observability is off.
  task.enqueue_ns = obs::IsEnabled() ? obs::NowNs() : 0;
  return task;
}

void Shard::NoteEnqueued() {
  if (steal_domain_ != nullptr) {
    steal_domain_->Signal();
  }
}

Status Shard::EnqueueBatch(ops::TupleBatch batch, std::uint64_t epoch) {
  // Account queue bytes *before* the push: the worker may pop and settle
  // the task the instant it lands, and the counter must never go negative.
  const std::size_t bytes = batch.ApproxBytes();
  queue_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (!queue_.Push(MakeBatchTask(std::move(batch), epoch))) {
    queue_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    return Status::FailedPrecondition("shard is stopped");
  }
  NoteEnqueued();
  return Status::OK();
}

Status Shard::TryEnqueueBatch(ops::TupleBatch batch, std::uint64_t epoch) {
  using PushResult = BoundedTaskQueue<Task>::PushResult;
  const std::size_t bytes = batch.ApproxBytes();
  queue_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  switch (queue_.TryPush(MakeBatchTask(std::move(batch), epoch))) {
    case PushResult::kAccepted:
      NoteEnqueued();
      return Status::OK();
    case PushResult::kFull:
      queue_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "shard " + std::to_string(index_) + " queue is full");
    case PushResult::kClosed:
    default:
      queue_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::FailedPrecondition("shard is stopped");
  }
}

Status Shard::EnqueueBatchFor(ops::TupleBatch batch, std::uint64_t epoch,
                              std::chrono::milliseconds timeout) {
  using PushResult = BoundedTaskQueue<Task>::PushResult;
  const std::size_t bytes = batch.ApproxBytes();
  queue_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  switch (queue_.PushFor(MakeBatchTask(std::move(batch), epoch), timeout)) {
    case PushResult::kAccepted:
      NoteEnqueued();
      return Status::OK();
    case PushResult::kFull:
      queue_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "shard " + std::to_string(index_) + " queue still full after " +
          std::to_string(timeout.count()) + "ms");
    case PushResult::kClosed:
    default:
      queue_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      return Status::FailedPrecondition("shard is stopped");
  }
}

Status Shard::RunControl(ControlFn fn) {
  std::promise<void> done;
  std::future<void> future = done.get_future();
  // The worker writes ctl_status before set_value and the caller reads it
  // only after future.wait(), so the stack capture is safe and ordered.
  Status ctl_status;
  Task task;
  task.control = [&done, &ctl_status, index = index_,
                  fn = std::move(fn)](fabric::StreamFabricator& f) {
    // Catch inside the closure: a throwing control fn must still fulfil
    // the promise or the waiting caller deadlocks.
    try {
      fn(f);
    } catch (const std::exception& e) {
      ctl_status = Status::Internal("shard " + std::to_string(index) +
                                    " control task threw: " + e.what());
    } catch (...) {
      ctl_status = Status::Internal("shard " + std::to_string(index) +
                                    " control task threw a foreign object");
    }
    done.set_value();
  };
  if (!queue_.Push(std::move(task))) {
    return Status::FailedPrecondition("shard is stopped");
  }
  NoteEnqueued();
  future.wait();
  return ctl_status;
}

Status Shard::CrashFabricator() {
  CRAQR_ASSIGN_OR_RETURN(auto fresh,
                         fabric::StreamFabricator::Make(grid_, fabric_config_));
  // Rewire the violation callback exactly as Make did for the original.
  Shard* raw = this;
  fresh->SetViolationCallback(
      [raw](ops::AttributeId attribute, const geom::CellIndex& cell,
            const ops::FlattenBatchReport& report) {
        std::lock_guard<std::mutex> lock(raw->outbox_mu_);
        raw->outbox_.violations.push_back(
            {attribute, cell, report, raw->current_epoch_});
      });
  // The swap is a control task: it happens at a task boundary with the
  // worker holding exclusive fabricator access. The ControlFn's reference
  // parameter goes stale the moment we assign, so it must not be touched —
  // we capture `this` instead.
  CRAQR_RETURN_NOT_OK(RunControl([this, &fresh](fabric::StreamFabricator&) {
    fabricator_ = std::move(fresh);
  }));
  // Everything the dead fabricator had half-delivered is gone with it;
  // recovery replays the held epochs, which regenerates these deliveries.
  {
    std::lock_guard<std::mutex> lock(outbox_mu_);
    outbox_.delivered.clear();
    outbox_.violations.clear();
  }
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    status_ = Status::OK();
  }
  return Status::OK();
}

Status Shard::WaitForEpochCompleted(std::uint64_t epoch) {
  if (epoch > 0) {
    std::unique_lock<std::mutex> lock(epoch_mu_);
    epoch_cv_.wait(lock, [this, epoch] { return completed_epoch_ >= epoch; });
  }
  return status();
}

void Shard::DeliverBatch(query::QueryId query, const ops::TupleBatch& batch) {
  std::lock_guard<std::mutex> lock(outbox_mu_);
  // Column-wise splice of the active rows into the current epoch's
  // per-query batch. A new (epoch, query) group starts from arena-recycled
  // storage (the router releases collected batches back), so steady-state
  // epochs splice allocation-free.
  auto& per_query = outbox_.delivered[current_epoch_];
  auto it = per_query.find(query);
  if (it == per_query.end()) {
    it = per_query.emplace(query, arena_.Acquire()).first;
  }
  it->second.AppendActiveFrom(batch);
}

ShardOutbox Shard::TakeOutbox(std::uint64_t max_delivery_epoch) {
  std::lock_guard<std::mutex> lock(outbox_mu_);
  ShardOutbox out;
  if (max_delivery_epoch == ~static_cast<std::uint64_t>(0)) {
    out.violations = std::move(outbox_.violations);
    outbox_.violations.clear();
  } else {
    // Epoch-gate the violations like the deliveries: later-epoch events
    // wait for a later collection (see the header contract — this is what
    // keeps crash recovery from double-replaying applied feedback).
    std::vector<ViolationEvent> kept;
    for (ViolationEvent& v : outbox_.violations) {
      if (v.epoch <= max_delivery_epoch) {
        out.violations.push_back(std::move(v));
      } else {
        kept.push_back(std::move(v));
      }
    }
    outbox_.violations = std::move(kept);
  }
  const auto end = outbox_.delivered.upper_bound(max_delivery_epoch);
  for (auto it = outbox_.delivered.begin(); it != end; ++it) {
    out.delivered[it->first] = std::move(it->second);
  }
  outbox_.delivered.erase(outbox_.delivered.begin(), end);
  return out;
}

Status Shard::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_;
}

void Shard::WorkerLoop() {
  while (true) {
    std::optional<Task> task;
    if (steal_domain_ == nullptr) {
      task = queue_.Pop();
      if (!task.has_value()) {
        return;  // closed and drained
      }
    } else {
      // Steal-aware idle loop: own queue first, then the deepest peer's
      // job board, then sleep until the domain signals new work. The
      // version read before the scan makes a signal between the scan and
      // the sleep impossible to miss.
      for (;;) {
        const std::uint64_t seen = steal_domain_->Version();
        bool closed = false;
        task = queue_.TryPop(&closed);
        if (task.has_value()) {
          break;
        }
        if (closed) {
          return;
        }
        if (TryStealOnce()) {
          continue;  // helped a peer; the own queue may have filled
        }
        steal_domain_->WaitForChange(seen);
      }
    }
    ProcessTask(std::move(*task));
  }
}

void Shard::ProcessTask(Task task) {
  if (task.control) {
    task.control(*fabricator_);
    return;
  }
  if (task.epoch > 0) {
    // Sticky: control tasks between batches keep reporting under the
    // latest epoch.
    current_epoch_ = task.epoch;
  }
  // Settle the queue-byte account: the storage hasn't been touched since
  // enqueue, so this subtracts exactly what the producer added.
  queue_bytes_.fetch_sub(task.batch.ApproxBytes(), std::memory_order_relaxed);
  const auto tuples = static_cast<std::uint64_t>(task.batch.size());
  const std::uint64_t start_ns = obs::NowNs();
  // The batch path is exception-hardened: an operator or fabricator throw
  // is converted to an Internal status carrying the shard and epoch
  // context, latched like any processing error. The shard stays parked in
  // the failed state but remains drainable — control tasks (and hence
  // Drain / crash recovery) keep running.
  Status status;
  try {
    std::uint64_t stall_ms = 0;
    if (CRAQR_FAULT_FIRE("runtime.worker_stall", &stall_ms)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
    }
    if (CRAQR_FAULT_FIRE("runtime.worker_throw", nullptr)) {
      throw std::runtime_error("fault injection: worker throw");
    }
    status = steal_domain_ != nullptr ? ProcessBatchCooperative(task.batch)
                                      : fabricator_->ProcessBatch(task.batch);
  } catch (const std::exception& e) {
    status = Status::Internal("shard " + std::to_string(index_) +
                              " worker threw at epoch " +
                              std::to_string(task.epoch) + ": " + e.what());
  } catch (...) {
    status = Status::Internal("shard " + std::to_string(index_) +
                              " worker threw a foreign object at epoch " +
                              std::to_string(task.epoch));
  }
  const std::uint64_t end_ns = obs::NowNs();
  busy_ns_->Add(end_ns - start_ns);
  batches_processed_->Increment();
  tuples_processed_->Add(tuples);
  // Latency distributions + trace span, observation-only (the task
  // carries an enqueue stamp only when observability was on at enqueue).
  if (task.enqueue_ns != 0 && obs::IsEnabled()) {
    queue_wait_ns_->Record(start_ns - task.enqueue_ns);
    process_ns_->Record(end_ns - start_ns);
    batch_latency_ns_->Record(end_ns - task.enqueue_ns);
    if (trace_ != nullptr) {
      trace_->Record("process", task.epoch, start_ns, end_ns, tuples);
    }
  }
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(status_mu_);
    if (status_.ok()) {
      status_ = std::move(status);  // latch the first failure
    }
  }
  // Publish epoch completion even on failure — a waiter must wake up and
  // read the latched status instead of hanging.
  if (task.epoch > 0) {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    if (task.epoch > completed_epoch_) {
      completed_epoch_ = task.epoch;
    }
    epoch_cv_.notify_all();
  }
}

Status Shard::ProcessBatchCooperative(ops::TupleBatch& batch) {
  const Result<std::size_t> jobs = fabricator_->BeginDispatch(batch);
  if (!jobs.ok()) {
    return jobs.status();
  }
  const auto total = static_cast<std::uint32_t>(*jobs);
  if (total <= 1) {
    // Nothing shareable; skip the board (and its Signal broadcast).
    const Status status =
        total == 1 ? fabricator_->RunDispatchJob(0) : Status::OK();
    const Status finished = fabricator_->FinishDispatch();
    return status.ok() ? finished : status;
  }
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    job_next_ = 0;
    job_total_ = total;
    job_done_ = 0;
    job_status_ = Status::OK();
    job_active_ = true;
  }
  steal_domain_->Signal();
  // The owner claims too — it is never idle while peers help.
  while (ClaimAndRunOneJob()) {
  }
  Status status;
  {
    std::unique_lock<std::mutex> lock(job_mu_);
    job_cv_.wait(lock, [this] { return job_done_ == job_total_; });
    job_active_ = false;
    status = job_status_;
  }
  // Every job has completed and the board is closed: the owner again has
  // exclusive fabricator access for the flush + violation replay.
  const Status finished = fabricator_->FinishDispatch();
  return status.ok() ? finished : status;
}

bool Shard::ClaimAndRunOneJob() {
  std::uint32_t job = 0;
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    if (!job_active_ || job_next_ == job_total_) {
      return false;
    }
    job = job_next_++;
  }
  // The board stays active until job_done_ reaches job_total_, which
  // cannot happen before this job is accounted below — so the dispatch
  // (and the fabricator topology under it) is stable while we run.
  const Status status = fabricator_->RunDispatchJob(job);
  std::lock_guard<std::mutex> lock(job_mu_);
  if (!status.ok() && job_status_.ok()) {
    job_status_ = status;
  }
  if (++job_done_ == job_total_) {
    job_cv_.notify_all();
  }
  return true;
}

bool Shard::TryStealOnce() {
  // Help the peer with the deepest backlog of unclaimed chain-group jobs.
  Shard* best = nullptr;
  std::uint32_t best_pending = 0;
  for (Shard* peer : steal_domain_->MembersSnapshot()) {
    if (peer == this) {
      continue;
    }
    std::lock_guard<std::mutex> lock(peer->job_mu_);
    if (!peer->job_active_) {
      continue;
    }
    const std::uint32_t pending = peer->job_total_ - peer->job_next_;
    if (pending > best_pending) {
      best = peer;
      best_pending = pending;
    }
  }
  if (best == nullptr || !best->ClaimAndRunOneJob()) {
    return false;
  }
  steals_->Increment();
  return true;
}

}  // namespace runtime
}  // namespace craqr
