#include "runtime/shard.h"

#include <chrono>
#include <future>
#include <utility>

#include "common/macros.h"

namespace craqr {
namespace runtime {

Result<std::unique_ptr<Shard>> Shard::Make(std::size_t index,
                                           const geom::Grid& grid,
                                           const fabric::FabricConfig& config,
                                           std::size_t queue_capacity,
                                           const std::string& metrics_scope,
                                           std::size_t trace_capacity) {
  if (queue_capacity < 1) {
    return Status::InvalidArgument("shard queue capacity must be >= 1");
  }
  CRAQR_ASSIGN_OR_RETURN(auto fabricator,
                         fabric::StreamFabricator::Make(grid, config));
  // Standalone shards (no router) get their own runtime instance scope so
  // two of them never alias each other's registry counters.
  const std::string scope =
      metrics_scope.empty()
          ? "craqr.rt" +
                std::to_string(obs::Registry::Global().NextInstanceId())
          : metrics_scope;
  auto shard = std::unique_ptr<Shard>(new Shard(
      index, std::move(fabricator), queue_capacity, scope, trace_capacity));
  // F-operator reports fire on the worker thread mid-batch; buffer them in
  // the outbox so the router can replay them single-threaded. The epoch of
  // the in-flight batch task rides along so replay can be held back to an
  // epoch horizon (pipelined engine feedback contract).
  Shard* raw = shard.get();
  shard->fabricator_->SetViolationCallback(
      [raw](ops::AttributeId attribute, const geom::CellIndex& cell,
            const ops::FlattenBatchReport& report) {
        std::lock_guard<std::mutex> lock(raw->outbox_mu_);
        raw->outbox_.violations.push_back(
            {attribute, cell, report, raw->current_epoch_});
      });
  shard->worker_ = std::thread([raw] { raw->WorkerLoop(); });
  return shard;
}

Shard::Shard(std::size_t index,
             std::unique_ptr<fabric::StreamFabricator> fabricator,
             std::size_t queue_capacity, const std::string& metrics_scope,
             std::size_t trace_capacity)
    : index_(index),
      fabricator_(std::move(fabricator)),
      queue_(queue_capacity) {
  // Registry lookups happen once here; the worker loop then writes
  // through the cached pointers lock-free.
  const std::string base = metrics_scope + ".shard" + std::to_string(index);
  batches_processed_ = obs::GetCounter(base + ".batches_processed");
  tuples_processed_ = obs::GetCounter(base + ".tuples_processed");
  busy_ns_ = obs::GetCounter(base + ".busy_ns");
  queue_wait_ns_ = obs::GetHistogram(base + ".queue_wait_ns");
  process_ns_ = obs::GetHistogram(base + ".process_ns");
  batch_latency_ns_ = obs::GetHistogram(base + ".batch_latency_ns");
  trace_ = obs::Tracer::Global().CreateRing(base, trace_capacity);
}

Shard::~Shard() { Stop(); }

void Shard::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  queue_.Close();
  if (worker_.joinable()) {
    worker_.join();
  }
}

Status Shard::EnqueueBatch(ops::TupleBatch batch, std::uint64_t epoch) {
  Task task;
  task.batch = std::move(batch);
  task.epoch = epoch;
  // Timestamp for the queue-wait / enqueue->drain histograms; one clock
  // read per sub-batch, skipped entirely when observability is off.
  task.enqueue_ns = obs::IsEnabled() ? obs::NowNs() : 0;
  if (!queue_.Push(std::move(task))) {
    return Status::FailedPrecondition("shard is stopped");
  }
  return Status::OK();
}

Status Shard::RunControl(ControlFn fn) {
  std::promise<void> done;
  std::future<void> future = done.get_future();
  Task task;
  task.control = [&done, fn = std::move(fn)](fabric::StreamFabricator& f) {
    fn(f);
    done.set_value();
  };
  if (!queue_.Push(std::move(task))) {
    return Status::FailedPrecondition("shard is stopped");
  }
  future.wait();
  return Status::OK();
}

Status Shard::WaitForEpochCompleted(std::uint64_t epoch) {
  if (epoch > 0) {
    std::unique_lock<std::mutex> lock(epoch_mu_);
    epoch_cv_.wait(lock, [this, epoch] { return completed_epoch_ >= epoch; });
  }
  return status();
}

void Shard::DeliverBatch(query::QueryId query, const ops::TupleBatch& batch) {
  std::lock_guard<std::mutex> lock(outbox_mu_);
  // Column-wise splice of the active rows into the current epoch's
  // per-query batch; capacities recycle across collections.
  outbox_.delivered[current_epoch_][query].AppendActiveFrom(batch);
}

ShardOutbox Shard::TakeOutbox(std::uint64_t max_delivery_epoch) {
  std::lock_guard<std::mutex> lock(outbox_mu_);
  ShardOutbox out;
  out.violations = std::move(outbox_.violations);
  outbox_.violations.clear();
  const auto end = outbox_.delivered.upper_bound(max_delivery_epoch);
  for (auto it = outbox_.delivered.begin(); it != end; ++it) {
    out.delivered[it->first] = std::move(it->second);
  }
  outbox_.delivered.erase(outbox_.delivered.begin(), end);
  return out;
}

Status Shard::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_;
}

void Shard::WorkerLoop() {
  while (true) {
    std::optional<Task> task = queue_.Pop();
    if (!task.has_value()) {
      return;  // closed and drained
    }
    if (task->control) {
      task->control(*fabricator_);
      continue;
    }
    if (task->epoch > 0) {
      // Sticky: control tasks between batches keep reporting under the
      // latest epoch.
      current_epoch_ = task->epoch;
    }
    const auto tuples = static_cast<std::uint64_t>(task->batch.size());
    const std::uint64_t start_ns = obs::NowNs();
    Status status = fabricator_->ProcessBatch(task->batch);
    const std::uint64_t end_ns = obs::NowNs();
    busy_ns_->Add(end_ns - start_ns);
    batches_processed_->Increment();
    tuples_processed_->Add(tuples);
    // Latency distributions + trace span, observation-only (the task
    // carries an enqueue stamp only when observability was on at enqueue).
    if (task->enqueue_ns != 0 && obs::IsEnabled()) {
      queue_wait_ns_->Record(start_ns - task->enqueue_ns);
      process_ns_->Record(end_ns - start_ns);
      batch_latency_ns_->Record(end_ns - task->enqueue_ns);
      if (trace_ != nullptr) {
        trace_->Record("process", task->epoch, start_ns, end_ns, tuples);
      }
    }
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(status_mu_);
      if (status_.ok()) {
        status_ = std::move(status);  // latch the first failure
      }
    }
    // Publish epoch completion even on failure — a waiter must wake up and
    // read the latched status instead of hanging.
    if (task->epoch > 0) {
      std::lock_guard<std::mutex> lock(epoch_mu_);
      if (task->epoch > completed_epoch_) {
        completed_epoch_ = task->epoch;
      }
      epoch_cv_.notify_all();
    }
  }
}

}  // namespace runtime
}  // namespace craqr
