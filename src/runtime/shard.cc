#include "runtime/shard.h"

#include <chrono>
#include <future>
#include <utility>

#include "common/macros.h"

namespace craqr {
namespace runtime {

Result<std::unique_ptr<Shard>> Shard::Make(std::size_t index,
                                           const geom::Grid& grid,
                                           const fabric::FabricConfig& config,
                                           std::size_t queue_capacity) {
  if (queue_capacity < 1) {
    return Status::InvalidArgument("shard queue capacity must be >= 1");
  }
  CRAQR_ASSIGN_OR_RETURN(auto fabricator,
                         fabric::StreamFabricator::Make(grid, config));
  auto shard = std::unique_ptr<Shard>(
      new Shard(index, std::move(fabricator), queue_capacity));
  // F-operator reports fire on the worker thread mid-batch; buffer them in
  // the outbox so the router can replay them single-threaded. The epoch of
  // the in-flight batch task rides along so replay can be held back to an
  // epoch horizon (pipelined engine feedback contract).
  Shard* raw = shard.get();
  shard->fabricator_->SetViolationCallback(
      [raw](ops::AttributeId attribute, const geom::CellIndex& cell,
            const ops::FlattenBatchReport& report) {
        std::lock_guard<std::mutex> lock(raw->outbox_mu_);
        raw->outbox_.violations.push_back(
            {attribute, cell, report, raw->current_epoch_});
      });
  shard->worker_ = std::thread([raw] { raw->WorkerLoop(); });
  return shard;
}

Shard::Shard(std::size_t index,
             std::unique_ptr<fabric::StreamFabricator> fabricator,
             std::size_t queue_capacity)
    : index_(index),
      fabricator_(std::move(fabricator)),
      queue_(queue_capacity) {}

Shard::~Shard() { Stop(); }

void Shard::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  queue_.Close();
  if (worker_.joinable()) {
    worker_.join();
  }
}

Status Shard::EnqueueBatch(ops::TupleBatch batch, std::uint64_t epoch) {
  Task task;
  task.batch = std::move(batch);
  task.epoch = epoch;
  if (!queue_.Push(std::move(task))) {
    return Status::FailedPrecondition("shard is stopped");
  }
  return Status::OK();
}

Status Shard::RunControl(ControlFn fn) {
  std::promise<void> done;
  std::future<void> future = done.get_future();
  Task task;
  task.control = [&done, fn = std::move(fn)](fabric::StreamFabricator& f) {
    fn(f);
    done.set_value();
  };
  if (!queue_.Push(std::move(task))) {
    return Status::FailedPrecondition("shard is stopped");
  }
  future.wait();
  return Status::OK();
}

Status Shard::WaitForEpochCompleted(std::uint64_t epoch) {
  if (epoch > 0) {
    std::unique_lock<std::mutex> lock(epoch_mu_);
    epoch_cv_.wait(lock, [this, epoch] { return completed_epoch_ >= epoch; });
  }
  return status();
}

void Shard::DeliverBatch(query::QueryId query, const ops::TupleBatch& batch) {
  std::lock_guard<std::mutex> lock(outbox_mu_);
  // Column-wise splice of the active rows into the current epoch's
  // per-query batch; capacities recycle across collections.
  outbox_.delivered[current_epoch_][query].AppendActiveFrom(batch);
}

ShardOutbox Shard::TakeOutbox(std::uint64_t max_delivery_epoch) {
  std::lock_guard<std::mutex> lock(outbox_mu_);
  ShardOutbox out;
  out.violations = std::move(outbox_.violations);
  outbox_.violations.clear();
  const auto end = outbox_.delivered.upper_bound(max_delivery_epoch);
  for (auto it = outbox_.delivered.begin(); it != end; ++it) {
    out.delivered[it->first] = std::move(it->second);
  }
  outbox_.delivered.erase(outbox_.delivered.begin(), end);
  return out;
}

Status Shard::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_;
}

void Shard::WorkerLoop() {
  while (true) {
    std::optional<Task> task = queue_.Pop();
    if (!task.has_value()) {
      return;  // closed and drained
    }
    if (task->control) {
      task->control(*fabricator_);
      continue;
    }
    if (task->epoch > 0) {
      // Sticky: control tasks between batches keep reporting under the
      // latest epoch.
      current_epoch_ = task->epoch;
    }
    const auto tuples = static_cast<std::uint64_t>(task->batch.size());
    const auto start = std::chrono::steady_clock::now();
    Status status = fabricator_->ProcessBatch(task->batch);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    busy_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
    batches_processed_.fetch_add(1, std::memory_order_relaxed);
    tuples_processed_.fetch_add(tuples, std::memory_order_relaxed);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(status_mu_);
      if (status_.ok()) {
        status_ = std::move(status);  // latch the first failure
      }
    }
    // Publish epoch completion even on failure — a waiter must wake up and
    // read the latched status instead of hanging.
    if (task->epoch > 0) {
      std::lock_guard<std::mutex> lock(epoch_mu_);
      if (task->epoch > completed_epoch_) {
        completed_epoch_ = task->epoch;
      }
      epoch_cv_.notify_all();
    }
  }
}

}  // namespace runtime
}  // namespace craqr
