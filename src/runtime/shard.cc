#include "runtime/shard.h"

#include <future>
#include <utility>

#include "common/macros.h"

namespace craqr {
namespace runtime {

Result<std::unique_ptr<Shard>> Shard::Make(std::size_t index,
                                           const geom::Grid& grid,
                                           const fabric::FabricConfig& config,
                                           std::size_t queue_capacity) {
  if (queue_capacity < 1) {
    return Status::InvalidArgument("shard queue capacity must be >= 1");
  }
  CRAQR_ASSIGN_OR_RETURN(auto fabricator,
                         fabric::StreamFabricator::Make(grid, config));
  auto shard = std::unique_ptr<Shard>(
      new Shard(index, std::move(fabricator), queue_capacity));
  // F-operator reports fire on the worker thread mid-batch; buffer them in
  // the outbox so the router can replay them single-threaded.
  Shard* raw = shard.get();
  shard->fabricator_->SetViolationCallback(
      [raw](ops::AttributeId attribute, const geom::CellIndex& cell,
            const ops::FlattenBatchReport& report) {
        std::lock_guard<std::mutex> lock(raw->outbox_mu_);
        raw->outbox_.violations.push_back({attribute, cell, report});
      });
  shard->worker_ = std::thread([raw] { raw->WorkerLoop(); });
  return shard;
}

Shard::Shard(std::size_t index,
             std::unique_ptr<fabric::StreamFabricator> fabricator,
             std::size_t queue_capacity)
    : index_(index),
      fabricator_(std::move(fabricator)),
      queue_(queue_capacity) {}

Shard::~Shard() { Stop(); }

void Shard::Stop() {
  if (stopped_) {
    return;
  }
  stopped_ = true;
  queue_.Close();
  if (worker_.joinable()) {
    worker_.join();
  }
}

Status Shard::EnqueueBatch(ops::TupleBatch batch) {
  Task task;
  task.batch = std::move(batch);
  if (!queue_.Push(std::move(task))) {
    return Status::FailedPrecondition("shard is stopped");
  }
  return Status::OK();
}

Status Shard::RunControl(ControlFn fn) {
  std::promise<void> done;
  std::future<void> future = done.get_future();
  Task task;
  task.control = [&done, fn = std::move(fn)](fabric::StreamFabricator& f) {
    fn(f);
    done.set_value();
  };
  if (!queue_.Push(std::move(task))) {
    return Status::FailedPrecondition("shard is stopped");
  }
  future.wait();
  return Status::OK();
}

void Shard::DeliverBatch(query::QueryId query, const ops::TupleBatch& batch) {
  std::lock_guard<std::mutex> lock(outbox_mu_);
  // Column-wise splice of the active rows; the per-query outbox batch
  // recycles its capacity across collections.
  outbox_.delivered[query].AppendActiveFrom(batch);
}

ShardOutbox Shard::TakeOutbox() {
  std::lock_guard<std::mutex> lock(outbox_mu_);
  ShardOutbox out = std::move(outbox_);
  outbox_ = ShardOutbox();
  return out;
}

Status Shard::status() const {
  std::lock_guard<std::mutex> lock(status_mu_);
  return status_;
}

void Shard::WorkerLoop() {
  while (true) {
    std::optional<Task> task = queue_.Pop();
    if (!task.has_value()) {
      return;  // closed and drained
    }
    if (task->control) {
      task->control(*fabricator_);
      continue;
    }
    Status status = fabricator_->ProcessBatch(task->batch);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(status_mu_);
      if (status_.ok()) {
        status_ = std::move(status);  // latch the first failure
      }
    }
  }
}

}  // namespace runtime
}  // namespace craqr
