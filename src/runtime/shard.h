#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "fabric/fabricator.h"
#include "geometry/grid.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/tuple.h"
#include "ops/tuple_batch.h"
#include "query/query.h"
#include "runtime/batch_arena.h"
#include "runtime/task_queue.h"

/// \file shard.h
/// \brief One shard of the sharded execution runtime.
///
/// A shard owns an independent StreamFabricator over its subset of grid
/// cells and a dedicated worker thread that drains a bounded task queue.
/// Tasks are either tuple sub-batches (the hot path) or control commands
/// (query insertion/removal, barriers); FIFO order keeps control changes
/// correctly interleaved with the batches around them. Tuples delivered by
/// the shard's partial query streams accumulate in an outbox the router
/// collects at batch boundaries and feeds into the per-query U merge
/// stage.
///
/// Batch tasks carry an **epoch** stamp — the engine's step number on the
/// pipelined path. Epochs are monotone in enqueue order, so once the
/// worker completes the batch of epoch e, every batch of an earlier epoch
/// is complete too; WaitForEpochCompleted() lets the router drain *through*
/// an epoch without barriering work enqueued after it (the heart of the
/// pipelined engine loop's partial drain).
///
/// The worker also keeps per-shard load telemetry — batches/tuples
/// processed and the wall-clock time spent inside ProcessBatch — that the
/// router surfaces through ShardedStats::per_shard as the measurement
/// input for load-aware cell rebalancing. The counters live in the
/// process-wide obs registry (one source of truth for Stats() and the
/// metrics exporter) under `<scope>.shard<i>.*`; latency histograms
/// (queue wait, processing time, enqueue->drain batch latency) and an
/// optional per-shard trace ring ride along, gated on obs::IsEnabled().

namespace craqr {
namespace runtime {

/// \brief An F-operator batch report captured on a worker thread, replayed
/// to the router's violation callback on the collecting thread (so budget
/// tuning stays single-threaded). `epoch` is the stamp of the batch task
/// the report fired under (0 for reports raised outside a stamped batch),
/// letting the router hold replay back to an epoch horizon.
struct ViolationEvent {
  ops::AttributeId attribute = 0;
  geom::CellIndex cell;
  ops::FlattenBatchReport report;
  std::uint64_t epoch = 0;
};

/// \brief Everything a shard produced since the last collection: one
/// columnar batch of delivered tuples per (epoch, router-level query)
/// (appended batch-at-a-time by the partial-stream sinks — one mutex
/// acquisition per delivered batch, not per tuple) plus buffered
/// F-operator reports. Deliveries are keyed by epoch (ordered map,
/// ascending) so the collector can feed each query's merge stage one
/// epoch at a time: F operators buffer tuples across epochs, so a
/// combined multi-epoch reorder flush would interleave differently than
/// the synchronous per-step flushes — per-epoch grouping keeps delivery
/// order byte-exact and independent of when the collect happens.
struct ShardOutbox {
  std::map<std::uint64_t,
           std::unordered_map<query::QueryId, ops::TupleBatch>>
      delivered;
  std::vector<ViolationEvent> violations;
};

class Shard;

/// \brief Shared coordination state of one runtime's work-stealing shard
/// group.
///
/// Shards register at creation; any producer-side event (task push, job
/// board publish, queue close) calls Signal(), which bumps a version
/// counter and wakes every idle worker. Idle workers run a version-guarded
/// scan — record the version, try the own queue, try the peers' job
/// boards, and only sleep until the version moves past what they saw — so
/// a wakeup between the scan and the sleep is never lost.
class StealDomain {
 public:
  StealDomain() = default;
  StealDomain(const StealDomain&) = delete;
  StealDomain& operator=(const StealDomain&) = delete;

  /// Adds a shard to the group (called once per shard, before its worker
  /// can observe peers).
  void Register(Shard* shard) {
    std::lock_guard<std::mutex> lock(mu_);
    members_.push_back(shard);
  }

  /// Wakes every idle worker in the group to re-scan for work.
  void Signal() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++version_;
    }
    cv_.notify_all();
  }

 private:
  friend class Shard;

  std::uint64_t Version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

  /// Sleeps until Signal() has been called after `seen` was read.
  void WaitForChange(std::uint64_t seen) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, seen] { return version_ != seen; });
  }

  /// Stable copy of the member list (registration may still be appending
  /// while earlier shards' workers already run).
  std::vector<Shard*> MembersSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return members_;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t version_ = 0;
  std::vector<Shard*> members_;
};

/// \brief A worker thread plus the StreamFabricator it exclusively drives.
class Shard {
 public:
  /// A command executed on the worker thread, in queue order, with
  /// exclusive access to the shard's fabricator.
  using ControlFn = std::function<void(fabric::StreamFabricator&)>;

  /// Creates a shard and starts its worker. All shards share the master
  /// fabric config (operator RNG seeds are cell-local, so disjoint cell
  /// subsets yield streams identical to a single fabricator's).
  /// `metrics_scope` prefixes the shard's registry metric names
  /// ("<scope>.shard<index>.*"); empty auto-allocates a fresh
  /// "craqr.rt<id>" instance scope. `trace_capacity` > 0 additionally
  /// creates a span trace ring of that many events for the worker. A
  /// non-null `steal_domain` enrolls the shard in a work-stealing group:
  /// its worker helps drain peers' published chain-group jobs while its
  /// own queue is empty, and its own batches are dispatched cooperatively
  /// (fabric::StreamFabricator::BeginDispatch) so peers can help back.
  static Result<std::unique_ptr<Shard>> Make(
      std::size_t index, const geom::Grid& grid,
      const fabric::FabricConfig& config, std::size_t queue_capacity,
      const std::string& metrics_scope = std::string(),
      std::size_t trace_capacity = 0,
      std::shared_ptr<StealDomain> steal_domain = nullptr);

  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Enqueues a tuple sub-batch for asynchronous processing; blocks when
  /// the queue is full (back-pressure). The batch storage moves into the
  /// task queue and is consumed by the worker's batch-native
  /// StreamFabricator::ProcessBatch. `epoch` stamps the task (pass 0 for
  /// unstamped work); callers must enqueue stamped epochs in strictly
  /// increasing order for WaitForEpochCompleted to be meaningful (the
  /// router enforces this globally).
  Status EnqueueBatch(ops::TupleBatch batch, std::uint64_t epoch = 0);

  /// Convenience overload scattering a tuple vector into fresh columns
  /// (one pass, copies; tests and tools only — the hot path hands over
  /// TupleBatches directly).
  Status EnqueueBatch(const std::vector<ops::Tuple>& batch,
                      std::uint64_t epoch = 0) {
    return EnqueueBatch(ops::TupleBatch(batch), epoch);
  }

  /// \brief Non-blocking enqueue for credit-based admission: never applies
  /// back-pressure. ResourceExhausted when the queue is full (the caller
  /// decides whether to spool, drop or reject the batch),
  /// FailedPrecondition when the shard is stopped. The batch is consumed
  /// only on success.
  Status TryEnqueueBatch(ops::TupleBatch batch, std::uint64_t epoch = 0);

  /// \brief Bounded-wait enqueue: blocks up to `timeout` for queue space,
  /// then fails with ResourceExhausted — the middle ground between
  /// EnqueueBatch (a stalled worker wedges the producer forever) and
  /// TryEnqueueBatch (shed immediately).
  Status EnqueueBatchFor(ops::TupleBatch batch, std::uint64_t epoch,
                         std::chrono::milliseconds timeout);

  /// Runs `fn` on the worker thread after all previously queued tasks and
  /// waits for it to finish. The function reports its own results through
  /// captured state. A throwing `fn` is caught on the worker and surfaces
  /// here as Internal (with the shard index and the exception message)
  /// instead of wedging the waiting caller.
  Status RunControl(ControlFn fn);

  /// \brief Simulated shard crash (fault-tolerance testing): destroys the
  /// fabricator — live operator chains, RNG phases, partial F batches,
  /// every query's partial stream — and replaces it with a fresh empty one
  /// over the same grid and config, discards the outbox, and clears any
  /// latched processing error. The swap runs as a control task, so it
  /// lands at a task boundary like every other piece of topology surgery.
  /// The shard keeps its thread, queue and steal-domain membership (peers
  /// hold raw pointers; only the fabricator state "crashes"). The caller
  /// (ShardedFabricator::CrashAndRestore) is responsible for rebuilding
  /// state from a checkpoint and replaying held epochs.
  Status CrashFabricator();

  /// Waits until every task enqueued so far has been processed.
  Status Drain() {
    return RunControl([](fabric::StreamFabricator&) {});
  }

  /// \brief Blocks until the worker has completed a batch task stamped
  /// with an epoch >= `epoch` (no-op for epoch 0). The caller must know a
  /// batch with that exact epoch was enqueued to THIS shard — epochs are
  /// sparse per shard (a step whose sub-batch for this shard was empty is
  /// never enqueued), so waiting on an epoch the shard never received
  /// would block until a later one completes (or forever). The router
  /// tracks per-shard in-flight epochs and always passes one it enqueued.
  /// Returns the shard's latched processing status.
  Status WaitForEpochCompleted(std::uint64_t epoch);

  /// Splices a delivered batch (active tuples, arrival order) into the
  /// outbox under one lock acquisition; called from partial-stream sink
  /// batch callbacks on the worker thread.
  void DeliverBatch(query::QueryId query, const ops::TupleBatch& batch);

  /// \brief Moves the accumulated outbox out — but only deliveries AND
  /// violation events of epochs <= `max_delivery_epoch`; later-epoch
  /// events stay in the outbox until a later collection. A partial drain
  /// passes the epoch it waited through: deliveries of a *later* epoch
  /// might already sit in the outbox half-complete (the worker is
  /// mid-batch), and collecting a split epoch would split its merge-stage
  /// reorder flush — diverging from the synchronous one-flush-per-step
  /// order. Epoch-gating the violations the same way is what lets crash
  /// recovery discard a restored shard's replayed outbox below the
  /// collected horizon without double-replaying feedback the router
  /// already applied. Full barriers pass the default (everything is
  /// complete then). Replay stays epoch-major-sorted on the router, so
  /// partial collection cannot reorder it.
  ShardOutbox TakeOutbox(
      std::uint64_t max_delivery_epoch = ~static_cast<std::uint64_t>(0));

  /// First batch-processing error, latched (control errors are reported
  /// through the control functions themselves).
  Status status() const;

  /// \brief One coherent pass over the worker-side load counters (all
  /// fields read back to back — after a Drain()/barrier the values are
  /// mutually consistent: processed == enqueued and queue_depth == 0).
  struct Load {
    std::uint64_t batches_processed = 0;
    std::uint64_t tuples_processed = 0;
    std::uint64_t busy_ns = 0;
    std::size_t queue_depth = 0;
  };

  /// \name Load telemetry
  /// Monotone counters maintained by the worker, stored in the process
  /// obs registry ("<scope>.shard<i>.*" — never runtime-gated, Stats()
  /// depends on them). Read after a Drain()/barrier for values consistent
  /// with the queue; use LoadSnapshot() when several fields must cohere.
  ///@{
  /// All load counters in one pass.
  Load LoadSnapshot() const {
    Load load;
    load.batches_processed = batches_processed_->value();
    load.tuples_processed = tuples_processed_->value();
    load.busy_ns = busy_ns_->value();
    load.queue_depth = queue_.size();
    return load;
  }
  /// Batch tasks the worker has finished processing.
  std::uint64_t batches_processed() const {
    return batches_processed_->value();
  }
  /// Tuples in those batches (active rows at enqueue time).
  std::uint64_t tuples_processed() const {
    return tuples_processed_->value();
  }
  /// Wall-clock nanoseconds the worker spent inside ProcessBatch — the
  /// per-shard busy-time signal for load-aware rebalancing.
  std::uint64_t busy_ns() const { return busy_ns_->value(); }
  /// Chain-group jobs this shard's worker ran on behalf of a peer
  /// ("<scope>.shard<i>.steals"); always 0 outside a steal domain.
  std::uint64_t steals() const { return steals_->value(); }
  /// The worker's span trace ring; nullptr unless Make got a
  /// trace_capacity > 0.
  const obs::TraceRing* trace_ring() const { return trace_; }
  ///@}

  /// \brief The shard's fabricator. Worker-owned: other threads may touch
  /// it only between a Drain() and the next enqueue (the drain's
  /// promise/future pair publishes the worker's writes).
  fabric::StreamFabricator& fabricator() { return *fabricator_; }
  const fabric::StreamFabricator& fabricator() const { return *fabricator_; }

  /// This shard's index in the runtime.
  std::size_t index() const { return index_; }

  /// Tasks currently queued (diagnostics).
  std::size_t queue_depth() const { return queue_.size(); }

  /// Approximate bytes of batch storage currently waiting in the task
  /// queue (enqueued but not yet processed) — governor accounting input.
  std::size_t queue_bytes() const {
    return queue_bytes_.load(std::memory_order_relaxed);
  }

  /// \brief The shard's outbox-splice storage pool. The worker Acquire()s
  /// a warmed batch for each new (epoch, query) delivery group; the
  /// router Release()s them back after collection, so steady-state epochs
  /// allocate nothing. Thread-safe — the router trims it under memory
  /// pressure while the worker runs.
  BatchArena& arena() { return arena_; }
  const BatchArena& arena() const { return arena_; }

  /// Closes the queue and joins the worker; idempotent.
  void Stop();

 private:
  struct Task {
    ops::TupleBatch batch;
    ControlFn control;  // non-null => control task
    std::uint64_t epoch = 0;
    /// Enqueue timestamp (obs::NowNs) for queue-wait / enqueue->drain
    /// latency histograms; 0 when observability is disabled.
    std::uint64_t enqueue_ns = 0;
  };

  Shard(std::size_t index, const geom::Grid& grid,
        const fabric::FabricConfig& config,
        std::unique_ptr<fabric::StreamFabricator> fabricator,
        std::size_t queue_capacity, const std::string& metrics_scope,
        std::size_t trace_capacity);

  /// Builds a stamped batch task (shared by the three enqueue variants).
  Task MakeBatchTask(ops::TupleBatch batch, std::uint64_t epoch);
  /// Post-push bookkeeping shared by the enqueue variants.
  void NoteEnqueued();

  void WorkerLoop();
  /// Runs one popped task (batch or control); shared by both worker-loop
  /// variants.
  void ProcessTask(Task task);
  /// The stamped-batch path inside a steal domain: routes the batch into
  /// chain-group jobs, publishes the job board so idle peers can claim
  /// groups, claims the rest itself, waits for stragglers, and closes the
  /// batch (FinishDispatch: flush + canonical violation replay). Delivered
  /// streams are byte-identical to the sequential path — jobs partition
  /// the chains by shared tapping query, so no merge head ever sees two
  /// threads.
  Status ProcessBatchCooperative(ops::TupleBatch& batch);
  /// Claims and runs one job from this shard's board (called by the owner
  /// worker and by stealing peers). Returns false when nothing is
  /// claimable. All board bookkeeping is under job_mu_ — claims are rare
  /// relative to the work a claim buys, so the lock is cold.
  bool ClaimAndRunOneJob();
  /// Helps the peer with the most unclaimed jobs; returns true when a job
  /// was stolen and run (the caller then re-checks its own queue first).
  bool TryStealOnce();

  std::size_t index_;
  std::unique_ptr<fabric::StreamFabricator> fabricator_;
  /// Construction inputs, kept so CrashFabricator can rebuild an empty
  /// fabricator with identical parameters (master seed included).
  geom::Grid grid_;
  fabric::FabricConfig fabric_config_;
  BoundedTaskQueue<Task> queue_;
  std::thread worker_;
  bool stopped_ = false;

  /// Work-stealing group; nullptr for fixed-ownership shards (the default
  /// and the pre-stealing behaviour).
  std::shared_ptr<StealDomain> steal_domain_;
  /// \name Cooperative-dispatch job board (all fields guarded by job_mu_).
  /// Active from publish until every chain-group job of the in-flight
  /// batch completed; the owner cannot start its next task before then,
  /// so a peer holding a claimed job always runs it against a stable
  /// dispatch.
  ///@{
  std::mutex job_mu_;
  std::condition_variable job_cv_;
  std::uint32_t job_next_ = 0;
  std::uint32_t job_total_ = 0;
  std::uint32_t job_done_ = 0;
  bool job_active_ = false;
  Status job_status_;
  ///@}

  mutable std::mutex outbox_mu_;
  ShardOutbox outbox_;
  /// Recycles outbox-splice batch storage between the worker (producer)
  /// and the router (consumer); see arena().
  BatchArena arena_;
  /// Bytes of batch storage sitting in queue_ (added on a successful
  /// enqueue, subtracted when the worker picks the task up).
  std::atomic<std::size_t> queue_bytes_{0};

  mutable std::mutex status_mu_;
  Status status_ = Status::OK();

  /// Highest stamped epoch whose batch task has completed (epochs are
  /// monotone in queue order, so >= e means everything through e is done).
  std::mutex epoch_mu_;
  std::condition_variable epoch_cv_;
  std::uint64_t completed_epoch_ = 0;
  /// Epoch of the most recent stamped batch task (sticky across control
  /// tasks, so anything they deliver or report joins the latest epoch's
  /// group); worker-thread only (read by the violation and delivery
  /// callbacks, which fire on the worker).
  std::uint64_t current_epoch_ = 0;

  /// \name Registry-backed telemetry (stable pointers, process lifetime).
  /// The three load counters are functional (ShardedStats reads them); the
  /// histograms and trace ring are observation extras gated on
  /// obs::IsEnabled().
  ///@{
  obs::Counter* batches_processed_ = nullptr;
  obs::Counter* tuples_processed_ = nullptr;
  obs::Counter* busy_ns_ = nullptr;
  obs::Counter* steals_ = nullptr;
  obs::LogHistogram* queue_wait_ns_ = nullptr;
  obs::LogHistogram* process_ns_ = nullptr;
  obs::LogHistogram* batch_latency_ns_ = nullptr;
  obs::TraceRing* trace_ = nullptr;
  ///@}
};

}  // namespace runtime
}  // namespace craqr
