#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "fabric/fabricator.h"
#include "geometry/grid.h"
#include "ops/tuple.h"
#include "ops/tuple_batch.h"
#include "query/query.h"
#include "runtime/task_queue.h"

/// \file shard.h
/// \brief One shard of the sharded execution runtime.
///
/// A shard owns an independent StreamFabricator over its subset of grid
/// cells and a dedicated worker thread that drains a bounded task queue.
/// Tasks are either tuple sub-batches (the hot path) or control commands
/// (query insertion/removal, barriers); FIFO order keeps control changes
/// correctly interleaved with the batches around them. Tuples delivered by
/// the shard's partial query streams accumulate in an outbox the router
/// collects at batch boundaries and feeds into the per-query U merge
/// stage.

namespace craqr {
namespace runtime {

/// \brief An F-operator batch report captured on a worker thread, replayed
/// to the router's violation callback on the collecting thread (so budget
/// tuning stays single-threaded).
struct ViolationEvent {
  ops::AttributeId attribute = 0;
  geom::CellIndex cell;
  ops::FlattenBatchReport report;
};

/// \brief Everything a shard produced since the last collection: one
/// columnar batch of delivered tuples per router-level query (appended
/// batch-at-a-time by the partial-stream sinks — one mutex acquisition per
/// delivered batch, not per tuple) plus buffered F-operator reports.
struct ShardOutbox {
  std::unordered_map<query::QueryId, ops::TupleBatch> delivered;
  std::vector<ViolationEvent> violations;
};

/// \brief A worker thread plus the StreamFabricator it exclusively drives.
class Shard {
 public:
  /// A command executed on the worker thread, in queue order, with
  /// exclusive access to the shard's fabricator.
  using ControlFn = std::function<void(fabric::StreamFabricator&)>;

  /// Creates a shard and starts its worker. All shards share the master
  /// fabric config (operator RNG seeds are cell-local, so disjoint cell
  /// subsets yield streams identical to a single fabricator's).
  static Result<std::unique_ptr<Shard>> Make(std::size_t index,
                                             const geom::Grid& grid,
                                             const fabric::FabricConfig& config,
                                             std::size_t queue_capacity);

  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Enqueues a tuple sub-batch for asynchronous processing; blocks when
  /// the queue is full (back-pressure). The batch storage moves into the
  /// task queue and is consumed by the worker's batch-native
  /// StreamFabricator::ProcessBatch.
  Status EnqueueBatch(ops::TupleBatch batch);

  /// Convenience overload scattering a tuple vector into fresh columns
  /// (one pass, copies; tests and tools only — the hot path hands over
  /// TupleBatches directly).
  Status EnqueueBatch(const std::vector<ops::Tuple>& batch) {
    return EnqueueBatch(ops::TupleBatch(batch));
  }

  /// Runs `fn` on the worker thread after all previously queued tasks and
  /// waits for it to finish. The function reports its own results through
  /// captured state.
  Status RunControl(ControlFn fn);

  /// Waits until every task enqueued so far has been processed.
  Status Drain() {
    return RunControl([](fabric::StreamFabricator&) {});
  }

  /// Splices a delivered batch (active tuples, arrival order) into the
  /// outbox under one lock acquisition; called from partial-stream sink
  /// batch callbacks on the worker thread.
  void DeliverBatch(query::QueryId query, const ops::TupleBatch& batch);

  /// Moves the accumulated outbox out.
  ShardOutbox TakeOutbox();

  /// First batch-processing error, latched (control errors are reported
  /// through the control functions themselves).
  Status status() const;

  /// \brief The shard's fabricator. Worker-owned: other threads may touch
  /// it only between a Drain() and the next enqueue (the drain's
  /// promise/future pair publishes the worker's writes).
  fabric::StreamFabricator& fabricator() { return *fabricator_; }
  const fabric::StreamFabricator& fabricator() const { return *fabricator_; }

  /// This shard's index in the runtime.
  std::size_t index() const { return index_; }

  /// Tasks currently queued (diagnostics).
  std::size_t queue_depth() const { return queue_.size(); }

  /// Closes the queue and joins the worker; idempotent.
  void Stop();

 private:
  struct Task {
    ops::TupleBatch batch;
    ControlFn control;  // non-null => control task
  };

  Shard(std::size_t index, std::unique_ptr<fabric::StreamFabricator> fabricator,
        std::size_t queue_capacity);

  void WorkerLoop();

  std::size_t index_;
  std::unique_ptr<fabric::StreamFabricator> fabricator_;
  BoundedTaskQueue<Task> queue_;
  std::thread worker_;
  bool stopped_ = false;

  mutable std::mutex outbox_mu_;
  ShardOutbox outbox_;

  mutable std::mutex status_mu_;
  Status status_ = Status::OK();
};

}  // namespace runtime
}  // namespace craqr
