#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

/// \file faultpoint.h
/// \brief Deterministic fault injection for the sharded runtime.
///
/// A *fault point* is a named site in production code where a test (or a
/// soak harness) can make the runtime misbehave on purpose:
///
///     if (CRAQR_FAULT_FIRE("runtime.shard_crash", &param)) { ... }
///
/// Sites are compiled into the hot path as a single relaxed atomic load
/// (`AnyArmed`) when nothing is armed, and compile out entirely — the
/// macro folds to `(false)` — when `CRAQR_FAULT_DISABLED` is defined
/// (mirroring the `CRAQR_OBS_DISABLED` observability switch).
///
/// Determinism: every firing decision comes from a seeded per-site
/// counter-based hash, never from global time or an unseeded RNG. Given
/// the same seed and the same sequence of `Fire` calls, the same hits
/// fire — which is what lets CI log one `CRAQR_FAULT_SEED` line and
/// replay a failing schedule exactly. Sites can alternatively be armed on
/// an explicit hit schedule (`at_hits`), the mode the recovery tests use
/// ("crash shard 1 at its 3rd epoch boundary").
///
/// Registered sites (see the call sites for exact semantics):
///   - "runtime.queue_full"   — admission sees the task queue as full
///   - "runtime.worker_stall" — worker sleeps `param` ms before a task
///   - "runtime.worker_throw" — worker throws mid-task (exception path)
///   - "runtime.shard_crash"  — fabricator state is destroyed at an
///                              epoch boundary (checkpoint recovery path)
///   - "runtime.alloc_fail"   — a checkpoint/restore allocation fails
///   - "runtime.mem_pressure" — the memory governor's poll is forced to a
///                              pressure level (param 1 = soft, 2 = hard)

namespace craqr {
namespace runtime {

/// \brief How an armed site decides whether a given hit fires.
struct FaultSpec {
  /// Bernoulli firing probability per hit (seeded counter hash). Ignored
  /// when `at_hits` is non-empty.
  double probability = 0.0;
  /// Explicit 1-based hit numbers that fire (deterministic schedule mode).
  std::vector<std::uint64_t> at_hits;
  /// Stop firing after this many fires (0 = unlimited).
  std::uint64_t max_fires = 0;
  /// Opaque site parameter (e.g. stall duration in ms), delivered to the
  /// call site through CRAQR_FAULT_FIRE's out-pointer.
  std::uint64_t param = 0;
};

/// \brief Process-wide seeded fault-point registry.
///
/// Thread-safe: Fire takes the registry mutex only while at least one
/// site is armed; the disarmed fast path is one relaxed atomic load.
class FaultRegistry {
 public:
  /// The process-wide instance every CRAQR_FAULT_FIRE site consults.
  static FaultRegistry& Global();

  /// Reseeds the probabilistic firing hash. Does not clear armed sites.
  void Seed(std::uint64_t seed);

  /// Arms (or re-arms, resetting its counters) a site.
  void Arm(const std::string& site, FaultSpec spec);

  /// Disarms one site; its hit/fire counters survive for inspection.
  void Disarm(const std::string& site);

  /// Disarms everything and clears all counters (test teardown).
  void Reset();

  /// \brief Called by the production code at a fault point: records the
  /// hit and decides whether the fault fires. `param_out` (optional)
  /// receives the armed spec's parameter when it fires.
  bool Fire(const char* site, std::uint64_t* param_out = nullptr);

  /// Times the site was reached since Arm/Reset (armed sites only).
  std::uint64_t hits(const std::string& site) const;

  /// Times the site actually fired since Arm/Reset.
  std::uint64_t fires(const std::string& site) const;

  /// True when at least one site is armed (the hot-path gate; public for
  /// the macro below).
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  FaultRegistry() = default;

  struct SiteState {
    FaultSpec spec;
    std::uint64_t hit_count = 0;
    std::uint64_t fire_count = 0;
    bool armed = false;
  };

  mutable std::mutex mu_;
  std::uint64_t seed_ = 0x9e3779b97f4a7c15ull;
  std::unordered_map<std::string, SiteState> sites_;
  std::atomic<std::uint64_t> armed_count_{0};
};

}  // namespace runtime
}  // namespace craqr

#ifdef CRAQR_FAULT_DISABLED
/// Fault injection compiled out: sites fold to a constant false.
#define CRAQR_FAULT_FIRE(site, param_out) (false)
#else
/// Hit the named fault site; true when the armed fault fires. The
/// disarmed fast path is one relaxed atomic load — cheap enough for the
/// worker loop.
#define CRAQR_FAULT_FIRE(site, param_out)                 \
  (::craqr::runtime::FaultRegistry::Global().AnyArmed() && \
   ::craqr::runtime::FaultRegistry::Global().Fire((site), (param_out)))
#endif
