#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "fabric/fabricator.h"
#include "geometry/grid.h"
#include "ops/tuple.h"
#include "ops/tuple_batch.h"
#include "query/query.h"
#include "runtime/memory_governor.h"
#include "runtime/rebalancer.h"
#include "runtime/shard.h"

/// \file sharded_fabricator.h
/// \brief Sharded parallel execution runtime over the stream fabricator.
///
/// The paper's map phase — hash each crowdsensed tuple to its grid cell's
/// topology — partitions perfectly by cell, so the runtime assigns every
/// grid cell to one of N shards (cell-index hash mod N). Each shard owns
/// an independent StreamFabricator over its cell subset, drained by a
/// dedicated worker thread pulling batches from a bounded queue:
///
///   world -> handler batch -> [shard router] -> per-shard sub-batches
///          -> per-cell PMAT topologies (parallel) -> partial streams
///          -> per-query U merge stage -> rate monitor -> sink
///
/// Query insert/remove are broadcast as control commands to the shards
/// owning overlapped cells; each query's per-shard partial streams are
/// combined by the same U-operator merge stage a single fabricator would
/// use, so the delivered MCDS is equivalent to the single-threaded
/// fabricator's. Operator RNG seeds are cell-local functions of the master
/// seed (StreamFabricator::OperatorSeed), which makes the delivered
/// stream content — every query's full set of delivered tuples —
/// identical for ANY shard count, not merely deterministic for a fixed
/// one. Delivery *order* is canonical too: every multi-cell merge stage
/// carries a reorder buffer (fabric::BuildMergeStage) that flushes each
/// processing step sorted by (t, id) on both execution paths, so
/// within-query order and windowed monitor statistics are identical for
/// every shard count, num_shards == 1 included.
///
/// The runtime is batch-native and columnar end to end: the router
/// partitions each incoming batch into per-shard `ops::TupleBatch`
/// sub-batches in one pass over the point column (56-byte row copies),
/// shard workers drive their fabricators through the batch-at-a-time
/// operator path, partial-stream sinks splice whole delivered batches
/// into the shard outbox under one mutex acquisition each, and collected
/// deliveries re-enter each query's merge stage as one batch per query.
///
/// Closed-loop feedback is replayed in a canonical order: every
/// FlattenBatchReport is stamped with its completing tuple's simulation
/// time (`completed_at`), and the collector replays reports sorted by
/// (completed_at, attribute, cell) — the same order the single-threaded
/// StreamFabricator replays at its batch boundaries. Order-sensitive
/// feedback consumers (the Section-VI incentive controller's
/// non-commutative raise/decay update included) therefore evolve
/// identically for every shard count, num_shards == 1 included.
///
/// Thread-safety: the public API is serialized by an internal mutex and
/// may be called from multiple threads; parallelism happens inside, across
/// the shard workers. The violation callback is invoked on the collecting
/// thread with the mutex released, so it may safely call back into the
/// runtime.
///
/// **Epochs.** The pipelined path stamps each enqueued batch with a
/// monotone epoch (the engine's step number). `DrainThrough(e)` waits only
/// for the batches of epochs <= e — batches of later epochs keep flowing
/// through the workers — then collects outboxes and replays buffered
/// violation reports *up to the epoch horizon* it advances to e. Reports
/// from later epochs are held (still in canonical order) until the horizon
/// passes their epoch, which is what keeps the budget/incentive feedback
/// loop byte-exact with the synchronous engine under pipelining: feedback
/// from step e is applied at exactly one step boundary, never "as soon as
/// a fast shard happens to finish". Full `Drain()` barriers everything and
/// flushes all deliveries but still respects the horizon; callers that
/// never engage epochs (plain EnqueueBatch/ProcessBatch) keep today's
/// replay-everything behaviour.

namespace craqr {
namespace runtime {

/// \brief How the router hands sub-batches to a shard queue on the
/// pipelined engine path.
enum class QueuePushPolicy {
  /// Block until the queue has room (back-pressure; the pre-admission
  /// behaviour — a stalled worker wedges the producer forever).
  kBlock,
  /// Block up to AdmissionConfig::queue_push_timeout_ms, then shed the
  /// sub-batch (craqr.admission.queue_timeouts / .queue_rejects).
  kTimedWait,
  /// Never block: a full queue sheds the sub-batch immediately.
  kTryOnce,
};

/// \brief What happens to a delivery for a query whose credits are
/// exhausted (see ShardedFabricator::SetDeliveryCredits).
enum class ShedPolicy {
  /// Spool the epoch's delivery in memory (FIFO, bounded by
  /// spool_limit_epochs); beyond the bound the *incoming* delivery drops.
  kSpool,
  /// Spool, but beyond the bound evict the *oldest* spooled epoch to make
  /// room — the subscriber prefers fresh data over a complete prefix.
  kDropOldest,
  /// Drop immediately, never spool.
  kReject,
};

/// \brief Credit-based admission and overload-shedding parameters.
struct AdmissionConfig {
  /// Shard-queue push behaviour on the engine path.
  QueuePushPolicy queue_policy = QueuePushPolicy::kBlock;
  /// Wait budget for kTimedWait before the sub-batch sheds.
  std::uint64_t queue_push_timeout_ms = 100;
  /// Delivery policy for credit-exhausted queries.
  ShedPolicy shed_policy = ShedPolicy::kSpool;
  /// Spooled epochs a query may hold before the shed policy's overflow
  /// rule kicks in.
  std::size_t spool_limit_epochs = 64;
  /// Watchdog sampling period; 0 (the default) starts no watchdog thread.
  std::uint64_t watchdog_interval_ms = 0;
  /// Consecutive samples a shard must sit on a non-empty queue without
  /// finishing a batch before it counts as stalled and the runtime enters
  /// degraded mode (craqr.admission.degraded gauge,
  /// craqr.fault.worker_stalls counter).
  std::uint64_t watchdog_stall_ticks = 3;
};

/// \brief Epoch-barrier checkpoint/restore parameters.
struct CheckpointConfig {
  /// Master switch: record per-shard replay logs and allow Checkpoint() /
  /// crash recovery. Off by default (zero copies on the enqueue path).
  bool enabled = false;
  /// Per-shard bound on the epoch replay log. When more epochs pass
  /// without a fresh checkpoint the oldest entries drop
  /// (craqr.fault.replaylog_truncated) and byte-exact recovery of that
  /// shard becomes impossible until the next checkpoint.
  std::size_t replay_limit_epochs = 256;
};

/// \brief Runtime construction parameters.
struct ShardedConfig {
  /// Number of shards / worker threads (>= 1).
  std::size_t num_shards = 1;
  /// Sub-batches each shard queue holds before producers block.
  std::size_t queue_capacity = 64;
  /// Fabric parameters shared by every shard (the master seed included;
  /// per-operator seeds are derived cell-locally from it).
  fabric::FabricConfig fabric;
  /// Span-event capacity of each observability trace ring (one per shard
  /// worker plus one for the router; see obs/trace.h). 0 (the default)
  /// creates no rings — tracing off, zero cost.
  std::size_t trace_capacity = 0;
  /// Work stealing (num_shards >= 2): an idle shard worker claims
  /// chain-group jobs from the busiest peer's in-flight batch instead of
  /// sleeping, so transient bursts don't serialize on one worker.
  /// Delivered streams stay byte-exact (jobs partition chains by shared
  /// tapping query; see fabric::StreamFabricator::BeginDispatch). Off by
  /// default — the fixed-ownership worker loop.
  bool enable_stealing = false;
  /// Load-aware cell rebalancing: Rebalance() becomes a live operation
  /// that migrates hot cells between shard fabricators at an epoch
  /// barrier, turning the static cell-hash partition into an
  /// epoch-versioned routing table. Off by default.
  bool enable_rebalancing = false;
  /// Planner hysteresis knobs; used when enable_rebalancing.
  RebalanceConfig rebalance;
  /// Credit-based admission / overload shedding knobs.
  AdmissionConfig admission;
  /// Epoch-barrier checkpoint/restore knobs.
  CheckpointConfig checkpoint;
  /// Bounded-memory governance knobs (budget_bytes == 0 disables — the
  /// default). With a budget set, Make() switches the governed string
  /// pool (fabric.value_pool, or the process Global() pool) into
  /// generational mode and GovernMemory() polls/reclaims/degrades. See
  /// memory_governor.h.
  MemoryGovernorConfig memory;
};

/// \brief Per-shard load telemetry (one entry per shard in
/// ShardedStats::per_shard) — the measurement input for load-aware cell
/// rebalancing: a shard whose busy_ns/tuples_enqueued ratio towers over
/// its siblings owns the hot cells.
///
/// **Consistency contract.** Snapshot()/TrySnapshot() fill every entry
/// *after* a full cross-shard barrier, and each shard's fields are read
/// in one pass (router-side enqueue counters under the runtime mutex,
/// worker-side counters via Shard::LoadSnapshot). Per entry this means:
/// tuples_processed == tuples_enqueued, batches_processed ==
/// batches_enqueued, and queue_depth == 0 — the counters are mutually
/// consistent with each other and with every batch enqueued before the
/// snapshot, never a mix of per-field reads taken at different times.
/// The underlying registry counters (craqr.rt<id>.shard<i>.*) keep
/// advancing between snapshots; only this struct is a coherent cut.
struct ShardLoadStats {
  std::size_t shard = 0;
  /// Tuples the router partitioned into this shard's sub-batches.
  std::uint64_t tuples_enqueued = 0;
  /// Sub-batches the router enqueued to this shard.
  std::uint64_t batches_enqueued = 0;
  /// Tuples the worker has finished processing.
  std::uint64_t tuples_processed = 0;
  /// Batch tasks the worker has finished processing.
  std::uint64_t batches_processed = 0;
  /// Wall-clock nanoseconds the worker spent inside ProcessBatch.
  std::uint64_t busy_ns = 0;
  /// Tasks queued at snapshot time (0 after the snapshot's barrier).
  std::size_t queue_depth = 0;
  /// Chain-group jobs this worker claimed from peers' in-flight batches
  /// (0 unless work stealing is enabled).
  std::uint64_t steals = 0;
  /// Grid cells the routing table currently assigns to this shard.
  std::size_t cells_owned = 0;
};

/// \brief Aggregated runtime counters (see Snapshot()).
struct ShardedStats {
  std::uint64_t tuples_routed = 0;
  std::uint64_t tuples_unrouted = 0;
  std::uint64_t total_operator_evaluations = 0;
  std::size_t total_operators = 0;
  std::size_t materialized_cells = 0;
  std::size_t live_queries = 0;
  /// Approximate heap footprint of the runtime's string pool
  /// (fabric.value_pool when configured, ops::ValuePool::Global()
  /// otherwise) — the monitoring hook for unbounded free-form string
  /// payloads.
  std::size_t value_pool_bytes = 0;
  /// \name Memory-governance telemetry
  ///@{
  /// Bytes parked on the shard batch arenas' free lists right now.
  std::size_t arena_free_bytes = 0;
  /// Highest arena free-list footprint ever observed (summed).
  std::size_t arena_high_water_bytes = 0;
  /// Arena acquisitions served from recycled storage (summed).
  std::uint64_t arena_reuses = 0;
  /// String-pool generations retired so far by the governed pool.
  std::uint64_t pool_generations_retired = 0;
  /// The memory governor's current pressure level (0 none / 1 soft /
  /// 2 hard; always 0 with governance disabled).
  int memory_pressure = 0;
  ///@}
  /// Epoch-versioned routing-table generation: bumped once per Rebalance()
  /// call that migrated at least one cell.
  std::uint64_t routing_version = 0;
  /// Rebalance() calls that migrated at least one cell.
  std::uint64_t rebalance_events = 0;
  /// Total cells migrated across all rebalance events.
  std::uint64_t cells_migrated = 0;
  /// \name Multi-query sharing census (fabric::FabricConfig::enable_sharing)
  ///@{
  /// Tap insertions that attached to an already-live stage (equal-rate T
  /// or shared P carve-out) instead of materializing a duplicate, summed
  /// across shards.
  std::uint64_t shared_prefix_hits = 0;
  /// Tap edges detached by query cancellation, summed across shards.
  std::uint64_t taps_detached = 0;
  /// Stages (T nodes or P carve-outs) tapped by >= 2 queries right now.
  std::size_t stages_shared = 0;
  /// Per-cell shared-stage census: (flat cell, shared-stage count) for
  /// every cell holding at least one stage with >= 2 tappers, sorted by
  /// flat cell (merged across shards; cells never alias because each cell
  /// lives on exactly one shard).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> shared_stage_census;
  ///@}
  /// Per-shard load counters (empty on the unsharded engine path).
  std::vector<ShardLoadStats> per_shard;
};

/// \brief Partitions the grid's cells across N shard fabricators and
/// merges their per-query partial streams into the final MCDS.
class ShardedFabricator {
 public:
  /// Creates the runtime and starts one worker thread per shard.
  static Result<std::unique_ptr<ShardedFabricator>> Make(
      const geom::Grid& grid, const ShardedConfig& config = ShardedConfig());

  ~ShardedFabricator();

  ShardedFabricator(const ShardedFabricator&) = delete;
  ShardedFabricator& operator=(const ShardedFabricator&) = delete;

  /// \brief Inserts an acquisitional query: validates the region, builds
  /// the cross-shard U merge stage (U -> rate monitor -> sink), and
  /// broadcasts partial-insert control commands to the shards owning
  /// overlapped cells. The returned handle's sink/monitor point at the
  /// merge stage and stay valid until RemoveQuery.
  Result<fabric::QueryStream> InsertQuery(ops::AttributeId attribute,
                                          const geom::Rect& region,
                                          double rate);

  /// \brief Removes a live query from every shard owning one of its cells
  /// and tears down its merge stage. In-flight deliveries are flushed to
  /// the sink first.
  Status RemoveQuery(query::QueryId id);

  /// \brief Routes a batch: partitions tuples by cell->shard hash into
  /// per-shard TupleBatches in one pass (moving tuples), enqueues the
  /// sub-batches, waits for all shards to drain, then merges delivered
  /// partial streams (one time-sorted batch per query) into each query's
  /// merge stage. Synchronous — equivalent to
  /// StreamFabricator::ProcessBatch. The batch is consumed.
  Status ProcessBatch(ops::TupleBatch& batch);

  /// Copying convenience overload of the batch-native ProcessBatch.
  Status ProcessBatch(const std::vector<ops::Tuple>& batch);

  /// \brief Pipelined variant: partitions and enqueues without waiting.
  /// Deliveries accumulate in shard outboxes until the next Drain() /
  /// DrainThrough() / ProcessBatch(). Back-pressure applies when a shard
  /// queue fills. The batch is consumed and stamped with the next
  /// auto-assigned epoch (last enqueued epoch + 1).
  Status EnqueueBatch(ops::TupleBatch& batch);

  /// \brief Epoch-stamped pipelined enqueue (the engine's step loop).
  /// `epoch` must be >= 1 and strictly increasing across calls (one batch
  /// per epoch — equal epochs could split an epoch's delivery group
  /// across drains); it is the unit DrainThrough() waits on and the grain
  /// violation replay is held to.
  Status EnqueueBatch(ops::TupleBatch& batch, std::uint64_t epoch);

  /// Copying convenience overload of the batch-native EnqueueBatch.
  Status EnqueueBatch(const std::vector<ops::Tuple>& batch);

  /// Waits for all queued work and flushes deliveries into query sinks.
  /// Violation replay honours the current epoch horizon (see
  /// SetReplayHorizon); with the horizon never engaged, everything
  /// collected is replayed — the pre-epoch behaviour.
  Status Drain();

  /// \brief Partial drain: waits only until every batch stamped with an
  /// epoch <= `epoch` has been processed (later epochs keep running),
  /// collects whatever the outboxes hold, advances the replay horizon to
  /// `epoch` and replays the violation reports that horizon releases.
  /// This is the pipelined engine's per-step synchronization point: one
  /// epoch's worth of waiting instead of a full barrier.
  Status DrainThrough(std::uint64_t epoch);

  /// \brief Engages the epoch horizon: violation reports from batches
  /// stamped with an epoch > `epoch` are held (in canonical order) at
  /// every replay point until the horizon passes their epoch. The horizon
  /// only moves forward. The pipelined engine sets it to 0 up front so no
  /// report can leak out before its contracted step.
  void SetReplayHorizon(std::uint64_t epoch);

  /// Registers the N_v callback consumed by the budget tuner; replayed on
  /// the collecting thread, never on shard workers.
  void SetViolationCallback(fabric::ViolationCallback callback);

  /// The merge-stage stream handle of a live query.
  Result<fabric::QueryStream> GetStream(query::QueryId id) const;

  /// Grid cells a query's region overlaps (for handler subscriptions).
  Result<std::vector<geom::CellIndex>> QueryCells(query::QueryId id) const;

  /// The shard currently owning a grid cell. Before any rebalance this is
  /// the static cell-hash partition; after one it reflects the live
  /// epoch-versioned routing table. Takes the runtime mutex — do not call
  /// from inside a violation callback that already holds it (there are
  /// none: callbacks run with the mutex released).
  std::size_t ShardForCell(const geom::CellIndex& index) const;

  /// \brief Load-aware cell rebalancing step (requires
  /// ShardedConfig::enable_rebalancing). Runs a full epoch barrier,
  /// collects per-cell routed-tuple deltas since the previous call plus
  /// per-shard busy-time deltas, asks the Rebalancer for a migration plan,
  /// and executes it: each moved cell's live operator chains are extracted
  /// from the source shard's fabricator and adopted by the destination's
  /// (seeds are cell-local, so delivered streams stay byte-exact), then
  /// the flat-cell routing table entry is flipped. Returns the number of
  /// cells migrated (0 when balanced or below trigger). Call between
  /// epochs — the engine invokes it right after DrainThrough.
  Result<std::size_t> Rebalance();

  /// \name Epoch-barrier checkpoint / crash recovery
  /// (requires ShardedConfig::checkpoint.enabled)
  ///
  /// Checkpoint() runs a full epoch barrier, collects every outstanding
  /// delivery, serializes each shard's complete fabricator state (operator
  /// chains, RNG phases, partial F batches, shared-stage ref counts) plus
  /// the query attachment map into an in-memory versioned snapshot, and
  /// resets the per-shard epoch replay logs. Afterwards a crashed shard —
  /// injected by InjectShardCrash or the "runtime.shard_crash" fault
  /// point — is rebuilt by restoring its snapshot blob and replaying the
  /// input sub-batches held since the checkpoint with their original
  /// epoch stamps, producing delivered streams byte-identical to a run
  /// with no crash (pinned in tests/runtime_checkpoint_test.cc). One
  /// checkpoint is taken automatically at construction and refreshed
  /// after every successful topology change (insert/remove/rebalance), so
  /// the snapshot's attachment map always matches the live topology.
  ///@{
  /// Takes a fresh checkpoint at a full epoch barrier.
  Status Checkpoint();
  /// True once a checkpoint exists (always true when checkpointing is
  /// enabled — Make takes the first one).
  bool HasCheckpoint() const;
  /// The epoch the current checkpoint was taken at.
  std::uint64_t CheckpointEpoch() const;
  /// Writes the current in-memory checkpoint to a file (versioned binary;
  /// string tuple payloads are interned ids, so the file is only
  /// restorable within the process that wrote it).
  Status SaveCheckpointToFile(const std::string& path) const;
  /// Replaces the in-memory checkpoint with one read from `path`
  /// (validating version, shard count and grid). The replay logs reset —
  /// only epochs enqueued after the load are replayable on a crash.
  Status LoadCheckpointFromFile(const std::string& path);
  /// \brief Simulated fail-stop: destroys `shard`'s fabricator state at a
  /// full epoch barrier and immediately rebuilds it from the checkpoint +
  /// replay log. FailedPrecondition when the replay log was truncated
  /// (byte-exact recovery impossible until the next Checkpoint()).
  Status InjectShardCrash(std::size_t shard);
  ///@}

  /// \name Delivery credits / overload shedding
  ///
  /// Every query starts with unlimited delivery credits. Once a finite
  /// budget is set, each collected epoch delivery consumes one credit;
  /// deliveries arriving with no credits left follow
  /// AdmissionConfig::shed_policy (spool / drop-oldest / reject), so one
  /// slow subscriber degrades gracefully instead of back-pressuring the
  /// runtime. Spooled epochs re-deliver in order as credits return.
  ///@{
  static constexpr std::uint64_t kUnlimitedCredits =
      ~static_cast<std::uint64_t>(0);
  /// Sets a query's remaining delivery credits (kUnlimitedCredits lifts
  /// the budget) and immediately delivers spooled epochs the new budget
  /// covers.
  Status SetDeliveryCredits(query::QueryId id, std::uint64_t credits);
  /// Adds credits to a query's budget and delivers spooled epochs.
  Status AddDeliveryCredits(query::QueryId id, std::uint64_t credits);
  /// Epochs currently spooled for a query.
  Result<std::size_t> SpooledEpochs(query::QueryId id) const;
  /// True while the watchdog sees at least one stalled worker (a shard
  /// sitting on a non-empty queue without completing batches for
  /// watchdog_stall_ticks consecutive samples) — or while the memory
  /// governor holds the runtime under hard pressure (fresh data keeps
  /// flowing but deliveries shed; see GovernMemory).
  bool degraded() const {
    return degraded_.load(std::memory_order_relaxed) ||
           mem_hard_.load(std::memory_order_relaxed);
  }
  ///@}

  /// \name Bounded-memory governance (ShardedConfig::memory)
  ///
  /// GovernMemory() is the per-epoch governance poll (the engine calls it
  /// once per step). Cheap when below the soft watermark: one pool
  /// ApproxBytes plus two relaxed loads per shard. At or above it, the
  /// runtime runs a value-preserving reclamation pass at a full epoch
  /// barrier: collect outstanding deliveries, re-intern every live string
  /// holder (shard fabricators, merge stages, spools, replay logs) into
  /// the pool's next generation, retire all older rotating generations,
  /// and trim arenas + operator scratch. Delivered streams stay
  /// byte-identical — the barrier+collect is the same observable pattern
  /// Checkpoint() already performs and re-interning moves handles, never
  /// values. At the hard watermark the runtime additionally degrades
  /// gracefully: every query's deliveries follow the configured hard shed
  /// policy (kDropOldest/kReject) regardless of credits, shard queue
  /// pushes become try-once, and degraded() reports true until pressure
  /// recedes below the soft watermark.
  ///@{
  /// One governance poll; no-op when ShardedConfig::memory.budget_bytes
  /// is 0.
  Status GovernMemory();
  /// The governor's current pressure level.
  MemoryPressure memory_pressure() const {
    return governor_ != nullptr ? governor_->pressure()
                                : MemoryPressure::kNone;
  }
  ///@}

  /// \brief Aggregated counters across every shard fabricator plus the
  /// merge stages. Waits for queued work first, so the numbers are
  /// consistent with all enqueued batches. If a shard has latched a
  /// processing error the stats come back zeroed (with an ERROR log) —
  /// use TrySnapshot when the caller can propagate a Status.
  ShardedStats Snapshot() const;

  /// \brief Status-carrying Snapshot(): surfaces a latched shard error
  /// instead of silently zeroed counters.
  Result<ShardedStats> TrySnapshot() const;

  /// Tuples routed into some shard topology (aggregate; drains first).
  std::uint64_t tuples_routed() const { return Snapshot().tuples_routed; }

  /// Tuples dropped in the map phase, on the router or inside shards.
  std::uint64_t tuples_unrouted() const { return Snapshot().tuples_unrouted; }

  /// Total operator evaluations across shards and merge stages.
  std::uint64_t TotalOperatorEvaluations() const {
    return Snapshot().total_operator_evaluations;
  }

  /// Live queries.
  std::size_t NumQueries() const;

  /// Worker shards.
  std::size_t num_shards() const { return shards_.size(); }

  /// \brief Runs StreamFabricator::ValidateInvariants on every shard (after
  /// a drain) and checks the router's own bookkeeping: every query's shard
  /// attachments resolve to live partial queries on the right shards, the
  /// cross-shard merge stages conserve the operator throughput counters
  /// across batch emits (head -> monitor -> sink), and no merge stage has
  /// received more tuples than its shard partial streams delivered.
  Status ValidateInvariants() const;

  /// Concatenated per-shard topology descriptions plus merge-stage lines.
  std::string DescribeTopology() const;

  /// The logical grid.
  const geom::Grid& grid() const { return grid_; }

 private:
  /// A query's partial stream on one shard.
  struct ShardAttachment {
    std::size_t shard = 0;
    query::QueryId local_id = 0;  // id assigned by the shard's fabricator
  };

  /// One shed-and-held epoch delivery (ShedPolicy::kSpool/kDropOldest).
  struct SpooledDelivery {
    std::uint64_t epoch = 0;
    ops::TupleBatch batch;
  };

  /// Router-level per-query state: the cross-shard merge stage.
  struct QueryState {
    fabric::QueryStream stream;
    ops::Pipeline merge_pipeline;
    ops::Operator* merge_head = nullptr;  // U (or pass-through) input
    std::vector<ShardAttachment> attachments;
    std::vector<geom::CellIndex> cells;
    /// Remaining delivery credits (kUnlimitedCredits = no budget).
    std::uint64_t credits = kUnlimitedCredits;
    /// Epoch deliveries shed while out of credits, oldest first.
    std::deque<SpooledDelivery> spool;
  };

  /// One held input sub-batch for crash replay (checkpointing only).
  struct ReplayEntry {
    std::uint64_t epoch = 0;
    ops::TupleBatch batch;
  };

  /// The in-memory snapshot Checkpoint() maintains.
  struct CheckpointState {
    bool valid = false;
    /// last_enqueued_epoch_ at capture time.
    std::uint64_t epoch = 0;
    /// One fabric::StreamFabricator::SaveState blob per shard.
    std::vector<std::string> shard_blobs;
    /// Per shard: snapshot-local query id -> router query id (feeds the
    /// restore DeliveryFactory and the attachment re-pointing).
    std::vector<std::unordered_map<query::QueryId, query::QueryId>>
        local_to_router;
  };

  ShardedFabricator(const geom::Grid& grid, const ShardedConfig& config)
      : grid_(grid), config_(config) {}

  Status EnqueueBatchLocked(const std::vector<ops::Tuple>& batch,
                            std::uint64_t epoch);
  Status EnqueueBatchLocked(ops::TupleBatch& batch, std::uint64_t epoch);
  Status EnqueueSubBatchesLocked(std::vector<ops::TupleBatch>& sub,
                                 std::uint64_t epoch);
  Status BarrierLocked() const;
  /// Waits only for batches of epochs <= `epoch` (per-shard in-flight
  /// bookkeeping picks the right wait target on each shard).
  Status WaitThroughEpochLocked(std::uint64_t epoch);
  /// Collects outboxes and merges deliveries of epochs <=
  /// `max_delivery_epoch` (one merge-stage flush per epoch, in epoch
  /// order); pass the default after a full barrier, the drained epoch
  /// after a partial one (later epochs may be mid-processing).
  Status CollectLocked(
      std::uint64_t max_delivery_epoch = ~static_cast<std::uint64_t>(0));
  Result<ShardedStats> SnapshotLocked() const;
  Result<fabric::QueryStream> InsertQueryLocked(ops::AttributeId attribute,
                                                const geom::Rect& region,
                                                double rate);
  Status RemoveQueryLocked(query::QueryId id);
  /// Owner lookup under mu_ (internal callers already hold the mutex).
  std::size_t ShardForCellLocked(const geom::CellIndex& index) const;
  /// Barrier + collect + plan + migrate; returns cells moved.
  Result<std::size_t> RebalanceLocked();
  /// Moves one cell's chains from `move.from` to `move.to` and flips its
  /// routing-table entry. The caller holds mu_ and has barriered.
  Status MigrateCellLocked(const CellMove& move);
  /// Barrier + collect + serialize every shard + reset replay logs.
  Status CheckpointLocked();
  /// Fail-stop `victim` and rebuild it from checkpoint_ + its replay log.
  Status CrashAndRestoreLocked(std::size_t victim);
  /// Fires the "runtime.shard_crash" fault point (called at every epoch
  /// boundary); crashes-and-restores the armed victim when it fires.
  Status MaybeInjectCrashLocked();
  /// Admission-aware delivery of one collected epoch batch into a query's
  /// merge stage: spends a credit or sheds per the policy (under hard
  /// memory pressure, sheds per the governor's policy regardless of
  /// credits).
  Status DeliverEpochLocked(QueryState& qs, std::uint64_t epoch,
                            ops::TupleBatch& batch);
  /// The governed string pool (config_.fabric.value_pool or Global()).
  ops::ValuePool& PoolLocked() const;
  /// The governance poll + reclamation/degradation body (see GovernMemory).
  Status GovernMemoryLocked();
  /// Sums pool/arena/queue byte accounting (the governor's poll input).
  MemoryGovernor::Usage AccountMemoryLocked() const;
  /// Re-delivers spooled epochs (oldest first) while credits allow.
  Status DrainSpoolLocked(QueryState& qs);
  /// The watchdog thread body (admission.watchdog_interval_ms > 0).
  void WatchdogLoop();
  /// Releases `lock` and then invokes the violation callback on the events
  /// CollectLocked buffered whose epoch is within the replay horizon,
  /// sorted by (completed_at, attribute, cell) — the canonical order
  /// StreamFabricator replays in, making feedback shard-count-independent.
  /// Events beyond the horizon stay buffered. The callback is user code
  /// and may re-enter any public method, so it must never run under mu_.
  void ReplayViolationsAndUnlock(std::unique_lock<std::mutex>& lock);

  /// Horizon value meaning "never engaged: replay everything".
  static constexpr std::uint64_t kNoReplayHorizon =
      ~static_cast<std::uint64_t>(0);

  geom::Grid grid_;
  ShardedConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex mu_;
  std::unordered_map<query::QueryId, QueryState> queries_;
  query::QueryId next_query_id_ = 1;
  fabric::ViolationCallback violation_callback_;
  /// Events collected from shard outboxes but not yet replayed to the
  /// callback (replay happens after mu_ is released; events beyond the
  /// replay horizon survive here across replay points).
  std::vector<ViolationEvent> pending_violations_;
  std::uint64_t router_unrouted_ = 0;  // tuples outside the grid region
  /// Highest epoch stamped onto an enqueued batch so far.
  std::uint64_t last_enqueued_epoch_ = 0;
  /// Violation-replay horizon (see SetReplayHorizon).
  std::uint64_t replay_horizon_ = kNoReplayHorizon;
  /// Highest epoch whose deliveries have been collected into the merge
  /// stages — the discard line for a restored shard's replayed outbox
  /// (everything at or below regenerated content the router already has).
  std::uint64_t collected_through_ = 0;
  /// \name Fault-tolerance state (checkpoint.enabled only)
  ///@{
  CheckpointState checkpoint_;
  /// Per-shard input sub-batches held since the last checkpoint, in epoch
  /// order, bounded by checkpoint.replay_limit_epochs.
  std::vector<std::deque<ReplayEntry>> shard_replay_;
  /// Set when a shard's replay log overflowed (byte-exact recovery of
  /// that shard is impossible until the next checkpoint).
  std::vector<char> replay_truncated_;
  ///@}
  /// \name Watchdog (admission.watchdog_interval_ms > 0)
  ///@{
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  /// batches_processed per shard at the previous sample.
  std::vector<std::uint64_t> watchdog_prev_batches_;
  /// Consecutive no-progress-with-backlog samples per shard.
  std::vector<std::uint64_t> watchdog_ticks_;
  std::atomic<bool> degraded_{false};
  ///@}
  /// \name Memory governance (ShardedConfig::memory)
  ///@{
  /// Always constructed (keeps the craqr.mem.* families registered);
  /// inert unless memory.budget_bytes > 0.
  std::unique_ptr<MemoryGovernor> governor_;
  /// Hard-pressure latch: read by DeliverEpochLocked (shed regardless of
  /// credits) and EnqueueSubBatchesLocked (try-once queue pushes), set by
  /// GovernMemoryLocked, cleared when pressure recedes below soft.
  std::atomic<bool> mem_hard_{false};
  ///@}
  /// \name Fault / admission telemetry (process-wide registry names,
  /// registered unconditionally so the exporter always carries the
  /// families).
  ///@{
  obs::Counter* admission_spooled_ = nullptr;
  obs::Counter* admission_dropped_ = nullptr;
  obs::Counter* admission_rejected_ = nullptr;
  obs::Counter* admission_delivered_spooled_ = nullptr;
  obs::Counter* admission_queue_timeouts_ = nullptr;
  obs::Counter* admission_queue_rejects_ = nullptr;
  obs::Gauge* admission_degraded_ = nullptr;
  obs::Counter* fault_checkpoints_ = nullptr;
  obs::Counter* fault_shard_crashes_ = nullptr;
  obs::Counter* fault_replaylog_truncated_ = nullptr;
  obs::Counter* fault_worker_stalls_ = nullptr;
  obs::Counter* fault_injections_ = nullptr;
  obs::LogHistogram* fault_recovery_ns_ = nullptr;
  ///@}
  /// Per-shard epochs with batches enqueued but not yet waited on, in
  /// ascending order (epochs are sparse per shard: a step whose sub-batch
  /// for a shard was empty never appears in that shard's deque). Mutable:
  /// the const full barrier prunes entries it has proven complete.
  mutable std::vector<std::deque<std::uint64_t>> shard_inflight_epochs_;
  /// \name Observability
  /// Registry-backed telemetry under this runtime's instance scope
  /// ("craqr.rt<id>"; see obs/metrics.h). The enqueue counters are
  /// functional — ShardedStats reads them — and never runtime-gated; the
  /// histograms and the optional router trace ring are observation extras
  /// gated on obs::IsEnabled().
  ///@{
  /// This runtime's metric-name scope, e.g. "craqr.rt0".
  std::string metrics_scope_;
  /// Router-side per-shard load counters (tuples/batches partitioned into
  /// each shard; the shard-side counters live on the workers).
  std::vector<obs::Counter*> shard_tuples_enqueued_;
  std::vector<obs::Counter*> shard_batches_enqueued_;
  /// Wall time of the router's partition+enqueue pass per batch.
  obs::LogHistogram* router_enqueue_ns_ = nullptr;
  /// Wall time DrainThrough/Drain spent waiting on shard epochs.
  obs::LogHistogram* router_drain_wait_ns_ = nullptr;
  /// Router span trace ring; nullptr unless config.trace_capacity > 0.
  obs::TraceRing* router_trace_ = nullptr;
  ///@}
  /// \name Histogram-router state
  /// Dense flat-cell -> owning-shard table (built once in Make — the
  /// cell-hash partition is static) with one sentinel entry for
  /// out-of-region rows, plus recycled per-batch scratch columns, so
  /// EnqueueBatch partitions a batch with one branch-free cell sweep, one
  /// gather, and one count -> prefix-sum -> scatter pass instead of
  /// per-row hash-and-branch dispatch.
  ///@{
  std::vector<std::uint32_t> shard_for_flat_;
  std::vector<std::uint32_t> row_cells_;
  std::vector<std::uint32_t> row_shards_;
  std::vector<std::uint32_t> shard_counts_;
  std::vector<std::uint32_t> grouped_rows_;
  ///@}
  /// \name Load-aware rebalancing state (enable_rebalancing only)
  ///@{
  /// Greedy planner with hysteresis; nullptr when rebalancing is off.
  std::unique_ptr<Rebalancer> rebalancer_;
  /// Per-flat-cell routed-tuple bank ("craqr.fabric.cell_routed.h<N>").
  /// Process-wide per grid size, so deltas are taken against the snapshot
  /// below rather than absolute values.
  obs::CounterBank* cell_routed_bank_ = nullptr;
  /// Bank values at the previous Rebalance() (or at creation), so each
  /// plan sees only the traffic of the last window.
  std::vector<std::uint64_t> cell_routed_prev_;
  /// Per-shard busy_ns at the previous Rebalance(), same windowing.
  std::vector<std::uint64_t> shard_busy_prev_;
  /// Routing-table generation + migration counters (ShardedStats fields).
  std::uint64_t routing_version_ = 0;
  std::uint64_t rebalance_events_ = 0;
  std::uint64_t cells_migrated_ = 0;
  /// Process-wide rebalance telemetry (functional counters for tests and
  /// the bench harness; plan_ns is observation-gated).
  obs::Counter* rebalance_migrations_ = nullptr;
  obs::Counter* rebalance_moved_cells_ = nullptr;
  obs::LogHistogram* rebalance_plan_ns_ = nullptr;
  ///@}
};

}  // namespace runtime
}  // namespace craqr
