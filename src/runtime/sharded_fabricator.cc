#include "runtime/sharded_fabricator.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "ops/extras.h"

namespace craqr {
namespace runtime {

Result<std::unique_ptr<ShardedFabricator>> ShardedFabricator::Make(
    const geom::Grid& grid, const ShardedConfig& config) {
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  auto runtime =
      std::unique_ptr<ShardedFabricator>(new ShardedFabricator(grid, config));
  runtime->shards_.reserve(config.num_shards);
  for (std::size_t i = 0; i < config.num_shards; ++i) {
    CRAQR_ASSIGN_OR_RETURN(
        auto shard, Shard::Make(i, grid, config.fabric, config.queue_capacity));
    runtime->shards_.push_back(std::move(shard));
  }
  return runtime;
}

ShardedFabricator::~ShardedFabricator() {
  for (auto& shard : shards_) {
    shard->Stop();
  }
}

void ShardedFabricator::SetViolationCallback(
    fabric::ViolationCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  violation_callback_ = std::move(callback);
}

Status ShardedFabricator::BarrierLocked() const {
  for (const auto& shard : shards_) {
    CRAQR_RETURN_NOT_OK(shard->Drain());
    CRAQR_RETURN_NOT_OK(shard->status());
  }
  return Status::OK();
}

Status ShardedFabricator::CollectLocked() {
  // Gather in ascending shard order; the replay sort below (and the merge
  // stages' reorder buffers) make the result independent of that order.
  std::unordered_map<query::QueryId, ops::TupleBatch> per_query;
  std::vector<ViolationEvent> violations;
  for (const auto& shard : shards_) {
    ShardOutbox box = shard->TakeOutbox();
    for (auto& [id, batch] : box.delivered) {
      ops::TupleBatch& dst = per_query[id];
      if (dst.empty()) {
        dst.Swap(batch);  // first shard: adopt the storage outright
      } else {
        dst.AppendActiveFrom(batch);
      }
    }
    for (ViolationEvent& v : box.violations) {
      violations.push_back(std::move(v));
    }
  }

  for (auto& [id, batch] : per_query) {
    const auto it = queries_.find(id);
    if (it == queries_.end()) {
      // RemoveQuery flushes deliveries before detaching, so a delivery for
      // a dead query means the bookkeeping broke.
      return Status::Internal("delivery for dead query " + std::to_string(id));
    }
    // No pre-sort here: a multi-cell query's merge stage carries a reorder
    // buffer (fabric::BuildMergeStage) that flushes each step in canonical
    // (t, id) order — the same operator the in-process fabricator drives,
    // so delivery order cannot diverge between the two paths. A
    // single-cell query lives entirely on one shard and its partial
    // stream arrives already time-ordered.
    QueryState& qs = it->second;
    CRAQR_RETURN_NOT_OK(qs.merge_head->PushBatch(batch));
    CRAQR_RETURN_NOT_OK(qs.merge_pipeline.FlushAll());
  }

  // Buffered, not invoked: the callback is user code and may re-enter the
  // runtime, so it only runs once mu_ is released (ReplayViolationsAndUnlock).
  pending_violations_.insert(pending_violations_.end(),
                             std::make_move_iterator(violations.begin()),
                             std::make_move_iterator(violations.end()));
  return Status::OK();
}

void ShardedFabricator::ReplayViolationsAndUnlock(
    std::unique_lock<std::mutex>& lock) {
  std::vector<ViolationEvent> events = std::move(pending_violations_);
  pending_violations_.clear();
  // Canonical replay order (fabric::ViolationReplayLess — the one
  // comparator StreamFabricator also sorts with), stable so each F
  // operator's reports keep their firing order. Sharing the comparator
  // is what makes feedback consumers evolve identically for every shard
  // count.
  std::stable_sort(events.begin(), events.end(),
                   [](const ViolationEvent& a, const ViolationEvent& b) {
                     return fabric::ViolationReplayLess(
                         {a.report.completed_at, a.attribute, a.cell},
                         {b.report.completed_at, b.attribute, b.cell});
                   });
  const fabric::ViolationCallback callback = violation_callback_;
  lock.unlock();
  if (callback) {
    for (const ViolationEvent& v : events) {
      callback(v.attribute, v.cell, v.report);
    }
  }
}

Status ShardedFabricator::EnqueueBatchLocked(
    const std::vector<ops::Tuple>& batch) {
  // Convenience path (tests, benches): one scatter, then the hot overload.
  ops::TupleBatch columns(batch);
  return EnqueueBatchLocked(columns);
}

Status ShardedFabricator::EnqueueBatchLocked(ops::TupleBatch& batch) {
  // One routing pass over the point column builds the per-shard
  // sub-batches, column-copying each matched row out of the consumed
  // input batch.
  batch.Materialize();
  std::vector<ops::TupleBatch> sub(shards_.size());
  const auto n = static_cast<std::uint32_t>(batch.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    const geom::SpaceTimePoint& p = batch.point_at(i);
    const auto cell = grid_.CellContaining(p.x, p.y);
    if (!cell.has_value()) {
      ++router_unrouted_;  // outside R; shards count in-grid drops
      continue;
    }
    sub[ShardForCell(*cell)].AppendRow(batch, i);
  }
  batch.Clear();
  return EnqueueSubBatchesLocked(sub);
}

Status ShardedFabricator::EnqueueSubBatchesLocked(
    std::vector<ops::TupleBatch>& sub) {
  for (std::size_t i = 0; i < sub.size(); ++i) {
    if (!sub[i].empty()) {
      CRAQR_RETURN_NOT_OK(shards_[i]->EnqueueBatch(std::move(sub[i])));
    }
  }
  return Status::OK();
}

Status ShardedFabricator::EnqueueBatch(const std::vector<ops::Tuple>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  return EnqueueBatchLocked(batch);
}

Status ShardedFabricator::EnqueueBatch(ops::TupleBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  return EnqueueBatchLocked(batch);
}

Status ShardedFabricator::ProcessBatch(const std::vector<ops::Tuple>& batch) {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = [&]() -> Status {
    CRAQR_RETURN_NOT_OK(EnqueueBatchLocked(batch));
    CRAQR_RETURN_NOT_OK(BarrierLocked());
    return CollectLocked();
  }();
  ReplayViolationsAndUnlock(lock);
  return status;
}

Status ShardedFabricator::ProcessBatch(ops::TupleBatch& batch) {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = [&]() -> Status {
    CRAQR_RETURN_NOT_OK(EnqueueBatchLocked(batch));
    CRAQR_RETURN_NOT_OK(BarrierLocked());
    return CollectLocked();
  }();
  ReplayViolationsAndUnlock(lock);
  return status;
}

Status ShardedFabricator::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = [&]() -> Status {
    CRAQR_RETURN_NOT_OK(BarrierLocked());
    return CollectLocked();
  }();
  ReplayViolationsAndUnlock(lock);
  return status;
}

Result<fabric::QueryStream> ShardedFabricator::InsertQuery(
    ops::AttributeId attribute, const geom::Rect& region, double rate) {
  std::unique_lock<std::mutex> lock(mu_);
  Result<fabric::QueryStream> result =
      InsertQueryLocked(attribute, region, rate);
  ReplayViolationsAndUnlock(lock);
  return result;
}

Result<fabric::QueryStream> ShardedFabricator::InsertQueryLocked(
    ops::AttributeId attribute, const geom::Rect& region, double rate) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    return Status::InvalidArgument("query rate must be > 0");
  }
  CRAQR_RETURN_NOT_OK(grid_.ValidateQueryRegion(region));
  CRAQR_ASSIGN_OR_RETURN(std::vector<geom::CellOverlap> overlaps,
                         grid_.Overlaps(region));
  const auto clipped = grid_.region().Intersection(region);
  if (!clipped.has_value()) {
    return Status::InvalidArgument(
        "query region does not intersect the system region");
  }

  // Reach a stable point before topology surgery, mirroring the
  // single-threaded fabricator where insertion happens between batches.
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  CRAQR_RETURN_NOT_OK(CollectLocked());

  const query::QueryId id = next_query_id_++;
  QueryState qs;
  qs.stream.id = id;
  qs.stream.attribute = attribute;
  qs.stream.region = *clipped;
  qs.stream.rate = rate;

  // Cross-shard merge stage: built by the same fabric::BuildMergeStage the
  // single-threaded fabricator uses, so the two paths cannot diverge.
  CRAQR_ASSIGN_OR_RETURN(
      qs.merge_head,
      fabric::BuildMergeStage(&qs.stream, &qs.merge_pipeline, overlaps,
                              config_.fabric.monitor_window,
                              config_.fabric.sink_capacity));

  // Broadcast partial inserts to the shards owning overlapped cells, in
  // ascending shard order (insertion order inside each shard fabricator is
  // then deterministic).
  std::vector<std::vector<geom::CellOverlap>> per_shard(shards_.size());
  for (const auto& overlap : overlaps) {
    per_shard[ShardForCell(overlap.cell)].push_back(overlap);
    qs.cells.push_back(overlap.cell);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) {
      continue;
    }
    Shard* shard = shards_[s].get();
    Result<fabric::QueryStream> local =
        Status::Internal("partial insert did not run");
    const Status control = shard->RunControl(
        [&local, shard, id, attribute, rate, &clipped,
         &shard_overlaps = per_shard[s]](fabric::StreamFabricator& f) {
          local = f.InsertQueryPartial(
              attribute, *clipped, rate, shard_overlaps,
              [shard, id](const ops::TupleBatch& batch) {
                shard->DeliverBatch(id, batch);
              });
        });
    if (control.ok() && local.ok()) {
      qs.attachments.push_back({s, local->id});
      continue;
    }
    // Roll back the shards already attached so a failed insert leaves no
    // orphan partial streams behind.
    for (const ShardAttachment& a : qs.attachments) {
      (void)shards_[a.shard]->RunControl(
          [&a](fabric::StreamFabricator& f) { (void)f.RemoveQuery(a.local_id); });
    }
    return control.ok() ? local.status() : control;
  }

  const fabric::QueryStream handle = qs.stream;
  queries_.emplace(id, std::move(qs));
  return handle;
}

Status ShardedFabricator::RemoveQuery(query::QueryId id) {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = RemoveQueryLocked(id);
  ReplayViolationsAndUnlock(lock);
  return status;
}

Status ShardedFabricator::RemoveQueryLocked(query::QueryId id) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  // Flush in-flight deliveries into the sink before detaching, so the
  // stream ends exactly where the single-threaded one would.
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  CRAQR_RETURN_NOT_OK(CollectLocked());

  Status first = Status::OK();
  for (const ShardAttachment& a : it->second.attachments) {
    Status removed = Status::OK();
    const Status control = shards_[a.shard]->RunControl(
        [&removed, &a](fabric::StreamFabricator& f) {
          removed = f.RemoveQuery(a.local_id);
        });
    if (first.ok() && !control.ok()) {
      first = control;
    }
    if (first.ok() && !removed.ok()) {
      first = removed;
    }
  }
  queries_.erase(it);
  return first;
}

Result<fabric::QueryStream> ShardedFabricator::GetStream(
    query::QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  return it->second.stream;
}

Result<std::vector<geom::CellIndex>> ShardedFabricator::QueryCells(
    query::QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  return it->second.cells;
}

std::size_t ShardedFabricator::NumQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_.size();
}

ShardedStats ShardedFabricator::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto stats = SnapshotLocked();
  if (!stats.ok()) {
    // No Status channel in this signature; the latched shard error still
    // surfaces on the next ProcessBatch/Drain/TrySnapshot.
    CRAQR_LOG(ERROR) << "Snapshot barrier failed, returning zeroed stats: "
                     << stats.status().ToString();
    return ShardedStats();
  }
  return *stats;
}

Result<ShardedStats> ShardedFabricator::TrySnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

Result<ShardedStats> ShardedFabricator::SnapshotLocked() const {
  ShardedStats stats;
  // The barrier publishes every worker's writes; afterwards the workers
  // block on their empty queues, so reading the fabricators is safe.
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  stats.tuples_unrouted = router_unrouted_;
  for (const auto& shard : shards_) {
    const fabric::StreamFabricator& f = shard->fabricator();
    stats.tuples_routed += f.tuples_routed();
    stats.tuples_unrouted += f.tuples_unrouted();
    stats.total_operator_evaluations += f.TotalOperatorEvaluations();
    stats.total_operators += f.TotalOperators();
    stats.materialized_cells += f.NumMaterializedCells();
  }
  for (const auto& [id, qs] : queries_) {
    (void)id;
    stats.total_operator_evaluations +=
        qs.merge_pipeline.TotalOperatorEvaluations();
    stats.total_operators += qs.merge_pipeline.size();
  }
  stats.live_queries = queries_.size();
  return stats;
}

Status ShardedFabricator::ValidateInvariants() const {
  std::lock_guard<std::mutex> lock(mu_);
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  for (const auto& shard : shards_) {
    CRAQR_RETURN_NOT_OK(shard->fabricator().ValidateInvariants());
  }
  const auto fail = [](const std::string& what) {
    return Status::Internal("runtime invariant violated: " + what);
  };
  for (const auto& [id, qs] : queries_) {
    if (qs.attachments.empty()) {
      return fail("query " + std::to_string(id) + " has no shard attachments");
    }
    for (const ShardAttachment& a : qs.attachments) {
      if (a.shard >= shards_.size()) {
        return fail("query " + std::to_string(id) + " attached to bad shard");
      }
      const auto local = shards_[a.shard]->fabricator().GetStream(a.local_id);
      if (!local.ok()) {
        return fail("query " + std::to_string(id) +
                    " lost its partial stream on shard " +
                    std::to_string(a.shard));
      }
      if (local->attribute != qs.stream.attribute) {
        return fail("query " + std::to_string(id) +
                    " partial stream attribute mismatch");
      }
    }
    for (const geom::CellIndex& cell : qs.cells) {
      const std::size_t owner = ShardForCell(cell);
      const bool attached =
          std::any_of(qs.attachments.begin(), qs.attachments.end(),
                      [owner](const ShardAttachment& a) {
                        return a.shard == owner;
                      });
      if (!attached) {
        return fail("query " + std::to_string(id) + " cell " +
                    cell.ToString() + " owned by unattached shard");
      }
    }
    // Counter conservation across batch emits, cross-shard edition: every
    // merge-stage operator accounts tuples_in/out exactly like the
    // per-tuple path...
    for (const auto& op : qs.merge_pipeline.operators()) {
      CRAQR_RETURN_NOT_OK(ops::ValidateStatsConservation(*op));
    }
    CRAQR_RETURN_NOT_OK(
        fabric::ValidateMergeStageCounters(qs.stream, *qs.merge_head));
    // ...and the merge head never sees more tuples than the shard partial
    // streams delivered (deliveries still sitting in shard outboxes make
    // this an inequality, not an equality).
    std::uint64_t partial_delivered = 0;
    for (const ShardAttachment& a : qs.attachments) {
      const auto local = shards_[a.shard]->fabricator().GetStream(a.local_id);
      if (local.ok()) {
        partial_delivered += local->sink->total_received();
      }
    }
    if (qs.merge_head->stats().tuples_in > partial_delivered) {
      return fail("query " + std::to_string(id) + " merge head received " +
                  std::to_string(qs.merge_head->stats().tuples_in) +
                  " tuples but shard partial streams only delivered " +
                  std::to_string(partial_delivered));
    }
  }
  return Status::OK();
}

std::string ShardedFabricator::DescribeTopology() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  if (!BarrierLocked().ok()) {
    return "<runtime failed>";
  }
  for (const auto& shard : shards_) {
    os << "shard " << shard->index() << ":\n"
       << shard->fabricator().DescribeTopology();
  }
  for (const auto& [id, qs] : queries_) {
    os << "Q" << id << " merge: " << qs.attachments.size()
       << " shard stream(s) -> "
       << (qs.merge_head->kind() == ops::OperatorKind::kUnion ? "U" : "Id")
       << " -> Mon -> Sink\n";
  }
  return os.str();
}

}  // namespace runtime
}  // namespace craqr
