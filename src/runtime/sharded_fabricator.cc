#include "runtime/sharded_fabricator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iterator>
#include <sstream>
#include <utility>

#include "common/logging.h"
#include "common/macros.h"
#include "common/simd.h"
#include "common/state_io.h"
#include "ops/extras.h"
#include "ops/value_pool.h"
#include "runtime/faultpoint.h"

namespace {
/// Checkpoint-file framing (the per-shard payloads inside carry their own
/// fabric-state version).
constexpr std::uint32_t kCheckpointFileMagic = 0x43525143u;  // "CQRC"
constexpr std::uint32_t kCheckpointFileVersion = 1;
}  // namespace

namespace craqr {
namespace runtime {

Result<std::unique_ptr<ShardedFabricator>> ShardedFabricator::Make(
    const geom::Grid& grid, const ShardedConfig& config) {
  if (config.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (config.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  auto runtime =
      std::unique_ptr<ShardedFabricator>(new ShardedFabricator(grid, config));
  // Fresh per-runtime metric scope: several runtimes in one process (tests,
  // benches, future multi-tenant serving) must never alias each other's
  // registry counters.
  runtime->metrics_scope_ =
      "craqr.rt" + std::to_string(obs::Registry::Global().NextInstanceId());
  // One steal domain per runtime: idle workers scan only their siblings'
  // job boards. Pointless with a single shard (no peers to help).
  std::shared_ptr<StealDomain> steal_domain;
  if (config.enable_stealing && config.num_shards >= 2) {
    steal_domain = std::make_shared<StealDomain>();
  }
  runtime->shards_.reserve(config.num_shards);
  for (std::size_t i = 0; i < config.num_shards; ++i) {
    CRAQR_ASSIGN_OR_RETURN(
        auto shard,
        Shard::Make(i, grid, config.fabric, config.queue_capacity,
                    runtime->metrics_scope_, config.trace_capacity,
                    steal_domain));
    runtime->shards_.push_back(std::move(shard));
  }
  runtime->shard_inflight_epochs_.resize(config.num_shards);
  runtime->shard_tuples_enqueued_.reserve(config.num_shards);
  runtime->shard_batches_enqueued_.reserve(config.num_shards);
  for (std::size_t i = 0; i < config.num_shards; ++i) {
    const std::string base =
        runtime->metrics_scope_ + ".shard" + std::to_string(i);
    runtime->shard_tuples_enqueued_.push_back(
        obs::GetCounter(base + ".tuples_enqueued"));
    runtime->shard_batches_enqueued_.push_back(
        obs::GetCounter(base + ".batches_enqueued"));
  }
  runtime->router_enqueue_ns_ =
      obs::GetHistogram(runtime->metrics_scope_ + ".router.enqueue_ns");
  runtime->router_drain_wait_ns_ =
      obs::GetHistogram(runtime->metrics_scope_ + ".router.drain_wait_ns");
  runtime->router_trace_ = obs::Tracer::Global().CreateRing(
      runtime->metrics_scope_ + ".router", config.trace_capacity);
  // Dense flat-cell -> shard table for the histogram router, seeded with
  // the static cell-hash partition. Without rebalancing it never changes;
  // with it, Rebalance() flips entries at epoch barriers — the table IS
  // the epoch-versioned routing state. The trailing sentinel entry is the
  // "outside R" bucket. Skipped (falling back to per-row hash routing)
  // only for absurdly fine grids.
  if (grid.NumCells() <= (1u << 22)) {
    runtime->shard_for_flat_.resize(grid.NumCells() + 1);
    for (std::uint32_t q = 0; q < grid.CellsPerSide(); ++q) {
      for (std::uint32_t r = 0; r < grid.CellsPerSide(); ++r) {
        const geom::CellIndex index{q, r};
        runtime->shard_for_flat_[grid.FlatIndex(index)] =
            static_cast<std::uint32_t>(geom::CellIndexHash{}(index) %
                                       config.num_shards);
      }
    }
    runtime->shard_for_flat_.back() =
        static_cast<std::uint32_t>(config.num_shards);
  }
  if (config.enable_rebalancing) {
    if (runtime->shard_for_flat_.empty()) {
      return Status::InvalidArgument(
          "rebalancing requires the dense routing table (grid too fine)");
    }
    runtime->rebalancer_ =
        std::make_unique<Rebalancer>(config.rebalance, config.num_shards);
    // The per-cell routed bank is process-wide per grid size (shared with
    // every fabricator over an equal grid), so load is read as deltas
    // against the snapshot taken here.
    runtime->cell_routed_bank_ = obs::GetCounterBank(
        "craqr.fabric.cell_routed.h" + std::to_string(grid.NumCells()),
        grid.NumCells());
    runtime->cell_routed_prev_.resize(grid.NumCells());
    for (std::size_t c = 0; c < grid.NumCells(); ++c) {
      runtime->cell_routed_prev_[c] = runtime->cell_routed_bank_->value(c);
    }
    runtime->shard_busy_prev_.assign(config.num_shards, 0);
    runtime->rebalance_migrations_ =
        obs::GetCounter("craqr.rebalance.migrations");
    runtime->rebalance_moved_cells_ =
        obs::GetCounter("craqr.rebalance.moved_cells");
    runtime->rebalance_plan_ns_ = obs::GetHistogram("craqr.rebalance.plan_ns");
  }
  // Admission / fault telemetry: process-wide families registered
  // unconditionally (functional counters — tests and the exporter smoke
  // assert on them — never runtime-gated).
  runtime->admission_spooled_ = obs::GetCounter("craqr.admission.spooled");
  runtime->admission_dropped_ = obs::GetCounter("craqr.admission.dropped");
  runtime->admission_rejected_ = obs::GetCounter("craqr.admission.rejected");
  runtime->admission_delivered_spooled_ =
      obs::GetCounter("craqr.admission.delivered_spooled");
  runtime->admission_queue_timeouts_ =
      obs::GetCounter("craqr.admission.queue_timeouts");
  runtime->admission_queue_rejects_ =
      obs::GetCounter("craqr.admission.queue_rejects");
  runtime->admission_degraded_ = obs::GetGauge("craqr.admission.degraded");
  runtime->fault_checkpoints_ = obs::GetCounter("craqr.fault.checkpoints");
  runtime->fault_shard_crashes_ = obs::GetCounter("craqr.fault.shard_crashes");
  runtime->fault_replaylog_truncated_ =
      obs::GetCounter("craqr.fault.replaylog_truncated");
  runtime->fault_worker_stalls_ =
      obs::GetCounter("craqr.fault.worker_stalls");
  runtime->fault_injections_ = obs::GetCounter("craqr.fault.injections");
  runtime->fault_recovery_ns_ = obs::GetHistogram("craqr.fault.recovery_ns");
  // Memory governor: constructed unconditionally (craqr.mem.* families
  // stay registered), inert unless a budget is set. With a budget, the
  // governed pool switches into generational mode so soft-pressure
  // reclamation can retire one-shot strings wholesale.
  runtime->governor_ = std::make_unique<MemoryGovernor>(config.memory);
  if (config.memory.budget_bytes > 0) {
    ops::ValuePool& pool = config.fabric.value_pool != nullptr
                               ? *config.fabric.value_pool
                               : ops::ValuePool::Global();
    pool.EnableGenerations();
  }
  runtime->shard_replay_.resize(config.num_shards);
  runtime->replay_truncated_.assign(config.num_shards, 0);
  if (config.checkpoint.enabled) {
    // The construction-time checkpoint: recovery works from epoch 0 on,
    // and HasCheckpoint() is an invariant rather than a phase.
    std::unique_lock<std::mutex> lock(runtime->mu_);
    CRAQR_RETURN_NOT_OK(runtime->CheckpointLocked());
  }
  if (config.admission.watchdog_interval_ms > 0) {
    runtime->watchdog_prev_batches_.assign(config.num_shards, 0);
    runtime->watchdog_ticks_.assign(config.num_shards, 0);
    ShardedFabricator* raw = runtime.get();
    runtime->watchdog_ = std::thread([raw] { raw->WatchdogLoop(); });
  }
  return runtime;
}

std::size_t ShardedFabricator::ShardForCell(const geom::CellIndex& index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ShardForCellLocked(index);
}

std::size_t ShardedFabricator::ShardForCellLocked(
    const geom::CellIndex& index) const {
  if (!shard_for_flat_.empty()) {
    return shard_for_flat_[grid_.FlatIndex(index)];
  }
  // Table-less fallback (oversized grid): rebalancing is rejected in Make
  // for these, so the static hash partition is always current.
  return geom::CellIndexHash{}(index) % shards_.size();
}

ShardedFabricator::~ShardedFabricator() {
  if (watchdog_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(watchdog_mu_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_all();
    watchdog_.join();
  }
  for (auto& shard : shards_) {
    shard->Stop();
  }
}

void ShardedFabricator::SetViolationCallback(
    fabric::ViolationCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  violation_callback_ = std::move(callback);
}

Status ShardedFabricator::BarrierLocked() const {
  for (const auto& shard : shards_) {
    CRAQR_RETURN_NOT_OK(shard->Drain());
    CRAQR_RETURN_NOT_OK(shard->status());
  }
  // Everything enqueued so far has completed; drop the epoch bookkeeping
  // so later partial drains skip straight past these epochs.
  for (auto& inflight : shard_inflight_epochs_) {
    inflight.clear();
  }
  return Status::OK();
}

Status ShardedFabricator::WaitThroughEpochLocked(std::uint64_t epoch) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::deque<std::uint64_t>& inflight = shard_inflight_epochs_[i];
    std::uint64_t target = 0;
    while (!inflight.empty() && inflight.front() <= epoch) {
      target = inflight.front();
      inflight.pop_front();
    }
    if (target > 0) {
      // Epochs are monotone in queue order: once the worker finishes the
      // largest in-flight epoch <= `epoch`, everything earlier is done.
      CRAQR_RETURN_NOT_OK(shards_[i]->WaitForEpochCompleted(target));
    }
    CRAQR_RETURN_NOT_OK(shards_[i]->status());
  }
  return Status::OK();
}

Status ShardedFabricator::CollectLocked(std::uint64_t max_delivery_epoch) {
  // Gather in ascending shard order; the replay sort below (and the merge
  // stages' reorder buffers) make the result independent of that order.
  // Deliveries stay keyed by epoch: F operators buffer tuples across
  // epochs, so each query's merge stage must see one push+flush per epoch
  // (in epoch order) — exactly the per-step grouping the synchronous path
  // produces — or a collect spanning several epochs would reorder the
  // delivered stream relative to it.
  // Each collected group remembers the shard whose arena its storage came
  // from, so the merge below can recycle it back to that shard's free list
  // (steady-state epochs then deliver+collect allocation-free).
  struct CollectedGroup {
    ops::TupleBatch batch;
    std::size_t origin = ~static_cast<std::size_t>(0);
  };
  std::map<std::uint64_t, std::unordered_map<query::QueryId, CollectedGroup>>
      per_epoch;
  std::vector<ViolationEvent> violations;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardOutbox box = shards_[s]->TakeOutbox(max_delivery_epoch);
    for (auto& [epoch, per_query] : box.delivered) {
      auto& dst_epoch = per_epoch[epoch];
      for (auto& [id, batch] : per_query) {
        CollectedGroup& dst = dst_epoch[id];
        if (dst.origin == ~static_cast<std::size_t>(0)) {
          dst.batch.Swap(batch);  // first shard: adopt the storage outright
          dst.origin = s;
        } else {
          dst.batch.AppendActiveFrom(batch);
          // The appended-from splice is spent; hand its storage back.
          shards_[s]->arena().Release(std::move(batch));
        }
      }
    }
    for (ViolationEvent& v : box.violations) {
      violations.push_back(std::move(v));
    }
  }

  for (auto& [epoch, per_query] : per_epoch) {
    for (auto& [id, group] : per_query) {
      const auto it = queries_.find(id);
      if (it == queries_.end()) {
        // RemoveQuery flushes deliveries before detaching, so a delivery
        // for a dead query means the bookkeeping broke.
        return Status::Internal("delivery for dead query " +
                                std::to_string(id));
      }
      // No pre-sort here: a multi-cell query's merge stage carries a
      // reorder buffer (fabric::BuildMergeStage) that flushes each step in
      // canonical (t, id) order — the same operator the in-process
      // fabricator drives, so delivery order cannot diverge between the
      // two paths. A single-cell query lives entirely on one shard and its
      // partial stream arrives already time-ordered.
      CRAQR_RETURN_NOT_OK(DeliverEpochLocked(it->second, epoch, group.batch));
      // Merge stages copy out (reorder buffer) or the spool swapped the
      // storage away; either way what's left recycles to its origin shard.
      shards_[group.origin]->arena().Release(std::move(group.batch));
    }
  }
  // The discard line for crash recovery: a restored shard's replayed
  // outbox is dropped at or below this epoch (the router already merged
  // that content).
  collected_through_ = std::max(
      collected_through_, std::min(max_delivery_epoch, last_enqueued_epoch_));

  // Buffered, not invoked: the callback is user code and may re-enter the
  // runtime, so it only runs once mu_ is released (ReplayViolationsAndUnlock).
  pending_violations_.insert(pending_violations_.end(),
                             std::make_move_iterator(violations.begin()),
                             std::make_move_iterator(violations.end()));
  return Status::OK();
}

void ShardedFabricator::ReplayViolationsAndUnlock(
    std::unique_lock<std::mutex>& lock) {
  // Split off the events the horizon releases; later-epoch events stay
  // buffered (in arrival order) until DrainThrough advances past them —
  // the pipelined feedback contract's "not before its step" half.
  std::vector<ViolationEvent> events;
  if (replay_horizon_ == kNoReplayHorizon) {
    events = std::move(pending_violations_);
    pending_violations_.clear();
  } else {
    std::vector<ViolationEvent> held;
    events.reserve(pending_violations_.size());
    for (ViolationEvent& v : pending_violations_) {
      if (v.epoch <= replay_horizon_) {
        events.push_back(std::move(v));
      } else {
        held.push_back(std::move(v));
      }
    }
    pending_violations_ = std::move(held);
  }
  // Canonical replay order: epoch (= batch boundary) first, then
  // fabric::ViolationReplayLess — the one comparator StreamFabricator also
  // sorts with — stable so each F operator's reports keep their firing
  // order. Epoch-major grouping makes one replay that releases several
  // epochs identical to draining them one at a time, which is exactly the
  // per-batch replay the single-threaded fabricator performs; sharing the
  // comparator within an epoch is what makes feedback consumers evolve
  // identically for every shard count.
  std::stable_sort(events.begin(), events.end(),
                   [](const ViolationEvent& a, const ViolationEvent& b) {
                     if (a.epoch != b.epoch) {
                       return a.epoch < b.epoch;
                     }
                     return fabric::ViolationReplayLess(
                         {a.report.completed_at, a.attribute, a.cell},
                         {b.report.completed_at, b.attribute, b.cell});
                   });
  const fabric::ViolationCallback callback = violation_callback_;
  lock.unlock();
  if (callback) {
    for (const ViolationEvent& v : events) {
      callback(v.attribute, v.cell, v.report);
    }
  }
}

Status ShardedFabricator::EnqueueBatchLocked(
    const std::vector<ops::Tuple>& batch, std::uint64_t epoch) {
  // Convenience path (tests, benches): one scatter, then the hot overload.
  ops::TupleBatch columns(batch);
  return EnqueueBatchLocked(columns, epoch);
}

Status ShardedFabricator::EnqueueBatchLocked(ops::TupleBatch& batch,
                                             std::uint64_t epoch) {
  if (epoch < 1 || epoch <= last_enqueued_epoch_) {
    // Strictly increasing: if two batches shared an epoch, the first
    // completed task would satisfy WaitForEpochCompleted while the second
    // was still queued, and a partial drain could split the epoch's
    // delivery group across two merge-stage flushes.
    return Status::InvalidArgument(
        "batch epochs must be >= 1 and strictly increasing (got " +
        std::to_string(epoch) + " after " +
        std::to_string(last_enqueued_epoch_) + ")");
  }
  // Router-side enqueue cost (partition + shard pushes, including any
  // back-pressure blocking) — observation only.
  const bool timed = obs::IsEnabled();
  const std::uint64_t t0 = timed ? obs::NowNs() : 0;
  const std::uint64_t total_tuples = batch.size();
  // Histogram shard partition over the point column: one branch-free
  // flat-cell sweep, one gather through the static cell -> shard table,
  // one count -> prefix-sum -> scatter pass, then each shard's sub-batch
  // receives its whole row group as a column-wise AppendRows splice —
  // no per-row hash, no per-row dispatch branch.
  batch.Materialize();
  std::vector<ops::TupleBatch> sub(shards_.size());
  const auto n = static_cast<std::uint32_t>(batch.size());
  if (n > 0 && !shard_for_flat_.empty()) {
    const auto num_shards = static_cast<std::uint32_t>(shards_.size());
    row_cells_.resize(n);
    grid_.FillFlatCells(batch.Points(), row_cells_.data(),
                        /*invalid_value=*/grid_.NumCells());
    row_shards_.resize(n);
    simd::GatherU32({row_cells_.data(), n},
                    {shard_for_flat_.data(), shard_for_flat_.size()},
                    row_shards_.data());
    shard_counts_.assign(num_shards + 1, 0);
    grouped_rows_.resize(n);
    simd::HistogramGroup({row_shards_.data(), n},
                         {shard_counts_.data(), num_shards + 1},
                         grouped_rows_.data());
    std::uint32_t begin = 0;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      const std::uint32_t end = shard_counts_[s];
      if (end != begin) {
        sub[s].AppendRows(batch,
                          {grouped_rows_.data() + begin, end - begin});
      }
      begin = end;
    }
    router_unrouted_ += n - begin;  // the sentinel bucket: outside R
  } else {
    // Per-row fallback (oversized grid table only).
    for (std::uint32_t i = 0; i < n; ++i) {
      const geom::SpaceTimePoint& p = batch.point_at(i);
      const auto cell = grid_.CellContaining(p.x, p.y);
      if (!cell.has_value()) {
        ++router_unrouted_;  // outside R; shards count in-grid drops
        continue;
      }
      sub[ShardForCellLocked(*cell)].AppendRow(batch, i);
    }
  }
  batch.Clear();
  const Status status = EnqueueSubBatchesLocked(sub, epoch);
  if (timed) {
    const std::uint64_t t1 = obs::NowNs();
    router_enqueue_ns_->Record(t1 - t0);
    if (router_trace_ != nullptr) {
      router_trace_->Record("enqueue", epoch, t0, t1, total_tuples);
    }
  }
  return status;
}

Status ShardedFabricator::EnqueueSubBatchesLocked(
    std::vector<ops::TupleBatch>& sub, std::uint64_t epoch) {
  last_enqueued_epoch_ = epoch;
  for (std::size_t i = 0; i < sub.size(); ++i) {
    if (sub[i].empty()) {
      continue;
    }
    const std::size_t tuples = sub[i].size();
    // Crash replay needs the sub-batch exactly as enqueued; copy before
    // the push consumes it. Zero cost with checkpointing off.
    ops::TupleBatch replay_copy;
    if (config_.checkpoint.enabled) {
      replay_copy.CopyFrom(sub[i]);
    }
    std::uint64_t unused = 0;
    const bool forced_full = CRAQR_FAULT_FIRE("runtime.queue_full", &unused);
    if (forced_full) {
      fault_injections_->Increment();
    }
    Status pushed = Status::OK();
    if (forced_full) {
      pushed = Status::ResourceExhausted("fault injection: shard " +
                                         std::to_string(i) + " queue full");
    } else {
      // Hard memory pressure turns every push into try-once: a blocked
      // producer would hold batch storage alive exactly when the governor
      // is trying to shrink it.
      const QueuePushPolicy queue_policy =
          mem_hard_.load(std::memory_order_relaxed)
              ? QueuePushPolicy::kTryOnce
              : config_.admission.queue_policy;
      switch (queue_policy) {
        case QueuePushPolicy::kBlock:
          pushed = shards_[i]->EnqueueBatch(std::move(sub[i]), epoch);
          break;
        case QueuePushPolicy::kTimedWait:
          pushed = shards_[i]->EnqueueBatchFor(
              std::move(sub[i]), epoch,
              std::chrono::milliseconds(
                  config_.admission.queue_push_timeout_ms));
          break;
        case QueuePushPolicy::kTryOnce:
          pushed = shards_[i]->TryEnqueueBatch(std::move(sub[i]), epoch);
          break;
      }
    }
    if (!pushed.ok()) {
      if (pushed.code() == StatusCode::kResourceExhausted) {
        // Shed this shard's sub-batch instead of wedging the producer.
        // No in-flight entry and no replay entry: the epoch never reached
        // the shard, so nothing may wait on it or replay it.
        admission_queue_rejects_->Increment();
        if (config_.admission.queue_policy == QueuePushPolicy::kTimedWait &&
            !forced_full) {
          admission_queue_timeouts_->Increment();
        }
        continue;
      }
      return pushed;
    }
    // Bookkeeping only after the push succeeds: a ghost in-flight epoch
    // for a task that never queued would turn the next partial drain
    // into an unbounded WaitForEpochCompleted.
    shard_tuples_enqueued_[i]->Add(tuples);
    shard_batches_enqueued_[i]->Increment();
    shard_inflight_epochs_[i].push_back(epoch);
    if (config_.checkpoint.enabled) {
      std::deque<ReplayEntry>& log = shard_replay_[i];
      ReplayEntry entry;
      entry.epoch = epoch;
      entry.batch.Swap(replay_copy);
      log.push_back(std::move(entry));
      while (log.size() > config_.checkpoint.replay_limit_epochs) {
        log.pop_front();
        replay_truncated_[i] = 1;
        fault_replaylog_truncated_->Increment();
      }
    }
  }
  return Status::OK();
}

Status ShardedFabricator::EnqueueBatch(const std::vector<ops::Tuple>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  return EnqueueBatchLocked(batch, last_enqueued_epoch_ + 1);
}

Status ShardedFabricator::EnqueueBatch(ops::TupleBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  return EnqueueBatchLocked(batch, last_enqueued_epoch_ + 1);
}

Status ShardedFabricator::EnqueueBatch(ops::TupleBatch& batch,
                                       std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  return EnqueueBatchLocked(batch, epoch);
}

Status ShardedFabricator::ProcessBatch(const std::vector<ops::Tuple>& batch) {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = [&]() -> Status {
    CRAQR_RETURN_NOT_OK(EnqueueBatchLocked(batch, last_enqueued_epoch_ + 1));
    CRAQR_RETURN_NOT_OK(BarrierLocked());
    CRAQR_RETURN_NOT_OK(CollectLocked());
    // Epoch boundary: the site the "runtime.shard_crash" fault targets.
    return MaybeInjectCrashLocked();
  }();
  ReplayViolationsAndUnlock(lock);
  return status;
}

Status ShardedFabricator::ProcessBatch(ops::TupleBatch& batch) {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = [&]() -> Status {
    CRAQR_RETURN_NOT_OK(EnqueueBatchLocked(batch, last_enqueued_epoch_ + 1));
    CRAQR_RETURN_NOT_OK(BarrierLocked());
    CRAQR_RETURN_NOT_OK(CollectLocked());
    // Epoch boundary: the site the "runtime.shard_crash" fault targets.
    return MaybeInjectCrashLocked();
  }();
  ReplayViolationsAndUnlock(lock);
  return status;
}

Status ShardedFabricator::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = [&]() -> Status {
    CRAQR_RETURN_NOT_OK(BarrierLocked());
    CRAQR_RETURN_NOT_OK(CollectLocked());
    // Epoch boundary: the site the "runtime.shard_crash" fault targets.
    return MaybeInjectCrashLocked();
  }();
  ReplayViolationsAndUnlock(lock);
  return status;
}

Status ShardedFabricator::DrainThrough(std::uint64_t epoch) {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = [&]() -> Status {
    // Time only the epoch wait — the pipeline-stall signal (how long the
    // router blocked on workers still short of the drain horizon).
    const bool timed = obs::IsEnabled();
    const std::uint64_t t0 = timed ? obs::NowNs() : 0;
    const Status waited = WaitThroughEpochLocked(epoch);
    if (timed) {
      const std::uint64_t t1 = obs::NowNs();
      router_drain_wait_ns_->Record(t1 - t0);
      if (router_trace_ != nullptr) {
        router_trace_->Record("drain", epoch, t0, t1, 0);
      }
    }
    CRAQR_RETURN_NOT_OK(waited);
    CRAQR_RETURN_NOT_OK(CollectLocked(epoch));
    // Epoch boundary: the site the "runtime.shard_crash" fault targets.
    return MaybeInjectCrashLocked();
  }();
  // Advancing the horizon is what releases this epoch's feedback; a
  // DrainThrough on a runtime that never engaged the horizon engages it.
  if (replay_horizon_ == kNoReplayHorizon || epoch > replay_horizon_) {
    replay_horizon_ = epoch;
  }
  ReplayViolationsAndUnlock(lock);
  return status;
}

void ShardedFabricator::SetReplayHorizon(std::uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (replay_horizon_ == kNoReplayHorizon || epoch > replay_horizon_) {
    replay_horizon_ = epoch;
  }
}

Result<std::size_t> ShardedFabricator::Rebalance() {
  std::unique_lock<std::mutex> lock(mu_);
  Result<std::size_t> moved = RebalanceLocked();
  // The barrier inside collected deliveries and violation reports; replay
  // the ones the horizon releases exactly like any other drain point.
  ReplayViolationsAndUnlock(lock);
  return moved;
}

Result<std::size_t> ShardedFabricator::RebalanceLocked() {
  if (rebalancer_ == nullptr) {
    return Status::FailedPrecondition(
        "rebalancing is not enabled (ShardedConfig::enable_rebalancing)");
  }
  // Migrations are topology surgery and must happen between batches,
  // exactly like query insertion: full barrier, then collect so no
  // delivery is parked in an outbox while its producing cell moves.
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  CRAQR_RETURN_NOT_OK(CollectLocked());
  const bool timed = obs::IsEnabled();
  const std::uint64_t t0 = timed ? obs::NowNs() : 0;
  // Load = deltas since the previous call, so each plan sees one window's
  // traffic instead of the process lifetime (which would never let a
  // cooled-down hot spot stop looking hot).
  const std::size_t num_cells = grid_.NumCells();
  std::vector<std::uint64_t> cell_load(num_cells, 0);
  for (std::size_t c = 0; c < num_cells; ++c) {
    const std::uint64_t now = cell_routed_bank_->value(c);
    cell_load[c] = now - std::min(now, cell_routed_prev_[c]);
    cell_routed_prev_[c] = now;
  }
  std::vector<std::uint64_t> shard_busy(shards_.size(), 0);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::uint64_t now = shards_[i]->LoadSnapshot().busy_ns;
    shard_busy[i] = now - std::min(now, shard_busy_prev_[i]);
    shard_busy_prev_[i] = now;
  }
  // shard_for_flat_ doubles as the owner column; its trailing sentinel is
  // past the planner's min(cell_load, cell_owner) bound and ignored.
  const RebalancePlan plan =
      rebalancer_->Plan(cell_load, shard_for_flat_, shard_busy);
  if (timed) {
    rebalance_plan_ns_->Record(obs::NowNs() - t0);
  }
  if (plan.moves.empty()) {
    return static_cast<std::size_t>(0);
  }
  std::size_t moved = 0;
  for (const CellMove& move : plan.moves) {
    CRAQR_RETURN_NOT_OK(MigrateCellLocked(move));
    ++moved;
  }
  ++routing_version_;
  ++rebalance_events_;
  cells_migrated_ += moved;
  rebalance_migrations_->Increment();
  rebalance_moved_cells_->Add(moved);
  if (config_.checkpoint.enabled) {
    // Cells moved between fabricators; the old per-shard blobs no longer
    // describe the live partition.
    CRAQR_RETURN_NOT_OK(CheckpointLocked());
  }
  return moved;
}

Status ShardedFabricator::MigrateCellLocked(const CellMove& move) {
  if (move.from >= shards_.size() || move.to >= shards_.size() ||
      move.from == move.to || move.flat_cell >= grid_.NumCells()) {
    return Status::Internal("rebalance plan produced an invalid move");
  }
  const std::uint32_t side = grid_.CellsPerSide();
  const geom::CellIndex index{move.flat_cell / side, move.flat_cell % side};
  Shard* src = shards_[move.from].get();
  Shard* dst = shards_[move.to].get();

  // Detach the live cell from the source fabricator (on its worker, like
  // every other topology command). NotFound means no query currently taps
  // the cell — only the ownership record moves.
  fabric::CellMigration payload;
  Status extracted = Status::OK();
  CRAQR_RETURN_NOT_OK(
      src->RunControl([&payload, &extracted, &index](fabric::StreamFabricator& f) {
        Result<fabric::CellMigration> r = f.ExtractCell(index);
        if (r.ok()) {
          payload = r.MoveValue();
        } else {
          extracted = r.status();
        }
      }));
  if (!extracted.ok()) {
    if (extracted.code() == StatusCode::kNotFound) {
      shard_for_flat_[move.flat_cell] = static_cast<std::uint32_t>(move.to);
      return Status::OK();
    }
    return extracted;
  }

  // Translate the payload's source-local tapping-query ids to
  // destination-local ids, materializing a delivery shell on the
  // destination for any query that owned no cell there yet.
  std::unordered_map<query::QueryId, query::QueryId> id_map;
  for (const query::QueryId src_local : payload.tap_query_ids()) {
    query::QueryId router_id = 0;
    QueryState* qs = nullptr;
    for (auto& [id, state] : queries_) {
      for (const ShardAttachment& a : state.attachments) {
        if (a.shard == move.from && a.local_id == src_local) {
          router_id = id;
          qs = &state;
          break;
        }
      }
      if (qs != nullptr) {
        break;
      }
    }
    if (qs == nullptr) {
      return Status::Internal("migrating cell " + index.ToString() +
                              " taps a query unknown to the router");
    }
    query::QueryId dst_local = 0;
    for (const ShardAttachment& a : qs->attachments) {
      if (a.shard == move.to) {
        dst_local = a.local_id;
        break;
      }
    }
    if (dst_local == 0) {
      Result<fabric::QueryStream> shell =
          Status::Internal("shell insert did not run");
      const fabric::QueryStream handle = qs->stream;
      CRAQR_RETURN_NOT_OK(dst->RunControl(
          [&shell, dst, router_id, &handle](fabric::StreamFabricator& f) {
            shell = f.InsertQueryShell(
                handle.attribute, handle.region, handle.rate,
                [dst, router_id](const ops::TupleBatch& batch) {
                  dst->DeliverBatch(router_id, batch);
                });
          }));
      CRAQR_RETURN_NOT_OK(shell.status());
      dst_local = shell->id;
      qs->attachments.push_back({move.to, dst_local});
    }
    id_map.emplace(src_local, dst_local);
  }

  Status adopted = Status::OK();
  CRAQR_RETURN_NOT_OK(dst->RunControl(
      [&payload, &adopted, &id_map](fabric::StreamFabricator& f) {
        adopted = f.AdoptCell(std::move(payload), id_map);
      }));
  CRAQR_RETURN_NOT_OK(adopted);
  shard_for_flat_[move.flat_cell] = static_cast<std::uint32_t>(move.to);
  return Status::OK();
}

Result<fabric::QueryStream> ShardedFabricator::InsertQuery(
    ops::AttributeId attribute, const geom::Rect& region, double rate) {
  std::unique_lock<std::mutex> lock(mu_);
  Result<fabric::QueryStream> result =
      InsertQueryLocked(attribute, region, rate);
  ReplayViolationsAndUnlock(lock);
  return result;
}

Result<fabric::QueryStream> ShardedFabricator::InsertQueryLocked(
    ops::AttributeId attribute, const geom::Rect& region, double rate) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    return Status::InvalidArgument("query rate must be > 0");
  }
  CRAQR_RETURN_NOT_OK(grid_.ValidateQueryRegion(region));
  CRAQR_ASSIGN_OR_RETURN(std::vector<geom::CellOverlap> overlaps,
                         grid_.Overlaps(region));
  const auto clipped = grid_.region().Intersection(region);
  if (!clipped.has_value()) {
    return Status::InvalidArgument(
        "query region does not intersect the system region");
  }

  // Reach a stable point before topology surgery, mirroring the
  // single-threaded fabricator where insertion happens between batches.
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  CRAQR_RETURN_NOT_OK(CollectLocked());

  const query::QueryId id = next_query_id_++;
  QueryState qs;
  qs.stream.id = id;
  qs.stream.attribute = attribute;
  qs.stream.region = *clipped;
  qs.stream.rate = rate;

  // Cross-shard merge stage: built by the same fabric::BuildMergeStage the
  // single-threaded fabricator uses, so the two paths cannot diverge.
  CRAQR_ASSIGN_OR_RETURN(
      qs.merge_head,
      fabric::BuildMergeStage(&qs.stream, &qs.merge_pipeline, overlaps,
                              config_.fabric.monitor_window,
                              config_.fabric.sink_capacity));

  // Broadcast partial inserts to the shards owning overlapped cells, in
  // ascending shard order (insertion order inside each shard fabricator is
  // then deterministic).
  std::vector<std::vector<geom::CellOverlap>> per_shard(shards_.size());
  for (const auto& overlap : overlaps) {
    per_shard[ShardForCellLocked(overlap.cell)].push_back(overlap);
    qs.cells.push_back(overlap.cell);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) {
      continue;
    }
    Shard* shard = shards_[s].get();
    Result<fabric::QueryStream> local =
        Status::Internal("partial insert did not run");
    const Status control = shard->RunControl(
        [&local, shard, id, attribute, rate, &clipped,
         &shard_overlaps = per_shard[s]](fabric::StreamFabricator& f) {
          local = f.InsertQueryPartial(
              attribute, *clipped, rate, shard_overlaps,
              [shard, id](const ops::TupleBatch& batch) {
                shard->DeliverBatch(id, batch);
              });
        });
    if (control.ok() && local.ok()) {
      qs.attachments.push_back({s, local->id});
      continue;
    }
    // Roll back the shards already attached so a failed insert leaves no
    // orphan partial streams behind.
    for (const ShardAttachment& a : qs.attachments) {
      (void)shards_[a.shard]->RunControl(
          [&a](fabric::StreamFabricator& f) { (void)f.RemoveQuery(a.local_id); });
    }
    return control.ok() ? local.status() : control;
  }

  const fabric::QueryStream handle = qs.stream;
  queries_.emplace(id, std::move(qs));
  if (config_.checkpoint.enabled) {
    // Refresh so the snapshot's attachment map matches the new topology
    // (checkpoint-time shard-local ids == live ids, which is what lets
    // crash recovery re-point attachments through the restore id map).
    CRAQR_RETURN_NOT_OK(CheckpointLocked());
  }
  return handle;
}

Status ShardedFabricator::RemoveQuery(query::QueryId id) {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = RemoveQueryLocked(id);
  ReplayViolationsAndUnlock(lock);
  return status;
}

Status ShardedFabricator::RemoveQueryLocked(query::QueryId id) {
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  // Flush in-flight deliveries into the sink before detaching, so the
  // stream ends exactly where the single-threaded one would.
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  CRAQR_RETURN_NOT_OK(CollectLocked());

  Status first = Status::OK();
  for (const ShardAttachment& a : it->second.attachments) {
    Status removed = Status::OK();
    const Status control = shards_[a.shard]->RunControl(
        [&removed, &a](fabric::StreamFabricator& f) {
          removed = f.RemoveQuery(a.local_id);
        });
    if (first.ok() && !control.ok()) {
      first = control;
    }
    if (first.ok() && !removed.ok()) {
      first = removed;
    }
  }
  queries_.erase(it);
  if (first.ok() && config_.checkpoint.enabled) {
    first = CheckpointLocked();  // snapshot must match the live topology
  }
  return first;
}

Status ShardedFabricator::DeliverEpochLocked(QueryState& qs,
                                             std::uint64_t epoch,
                                             ops::TupleBatch& batch) {
  const bool mem_hard = mem_hard_.load(std::memory_order_relaxed);
  if (!mem_hard) {
    // Spooled epochs are strictly older than this one and must re-deliver
    // first, or the query's stream would reorder across a credit refill.
    CRAQR_RETURN_NOT_OK(DrainSpoolLocked(qs));
    if (qs.credits == kUnlimitedCredits || qs.credits > 0) {
      if (qs.credits != kUnlimitedCredits) {
        --qs.credits;
      }
      CRAQR_RETURN_NOT_OK(qs.merge_head->PushBatch(batch));
      return qs.merge_pipeline.FlushAll();
    }
  }
  // Under hard memory pressure every delivery sheds per the governor's
  // policy — credits notwithstanding: bounded memory beats a complete
  // stream (the graceful-degradation half of the governance contract).
  const ShedPolicy policy =
      mem_hard ? (config_.memory.hard_reject ? ShedPolicy::kReject
                                             : ShedPolicy::kDropOldest)
               : config_.admission.shed_policy;
  switch (policy) {
    case ShedPolicy::kReject:
      admission_rejected_->Increment();
      return Status::OK();
    case ShedPolicy::kSpool:
      if (qs.spool.size() >= config_.admission.spool_limit_epochs) {
        admission_dropped_->Increment();  // the incoming epoch drops
        return Status::OK();
      }
      break;
    case ShedPolicy::kDropOldest:
      if (!qs.spool.empty() &&
          qs.spool.size() >= config_.admission.spool_limit_epochs) {
        qs.spool.pop_front();  // evict the oldest, keep fresh data
        admission_dropped_->Increment();
      }
      break;
  }
  SpooledDelivery held;
  held.epoch = epoch;
  held.batch.Swap(batch);
  qs.spool.push_back(std::move(held));
  admission_spooled_->Increment();
  return Status::OK();
}

Status ShardedFabricator::DrainSpoolLocked(QueryState& qs) {
  while (!qs.spool.empty() &&
         (qs.credits == kUnlimitedCredits || qs.credits > 0)) {
    SpooledDelivery held = std::move(qs.spool.front());
    qs.spool.pop_front();
    if (qs.credits != kUnlimitedCredits) {
      --qs.credits;
    }
    admission_delivered_spooled_->Increment();
    CRAQR_RETURN_NOT_OK(qs.merge_head->PushBatch(held.batch));
    CRAQR_RETURN_NOT_OK(qs.merge_pipeline.FlushAll());
  }
  return Status::OK();
}

ops::ValuePool& ShardedFabricator::PoolLocked() const {
  return config_.fabric.value_pool != nullptr ? *config_.fabric.value_pool
                                              : ops::ValuePool::Global();
}

MemoryGovernor::Usage ShardedFabricator::AccountMemoryLocked() const {
  MemoryGovernor::Usage usage;
  usage.pool_bytes = PoolLocked().ApproxBytes();
  for (const auto& shard : shards_) {
    usage.arena_bytes += shard->arena().free_bytes();
    usage.queue_bytes += shard->queue_bytes();
  }
  return usage;
}

Status ShardedFabricator::GovernMemory() {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = GovernMemoryLocked();
  // A reclamation pass collects outboxes, which buffers violation events;
  // replay them under the usual horizon discipline.
  ReplayViolationsAndUnlock(lock);
  return status;
}

Status ShardedFabricator::GovernMemoryLocked() {
  if (governor_ == nullptr || !governor_->enabled()) {
    return Status::OK();
  }
  const MemoryPressure pressure = governor_->Assess(AccountMemoryLocked());
  if (pressure == MemoryPressure::kNone) {
    mem_hard_.store(false, std::memory_order_relaxed);
    return Status::OK();
  }
  // Degradation engages before the reclamation barrier: a hard-pressure
  // collect already sheds instead of growing the merge stages further.
  mem_hard_.store(pressure == MemoryPressure::kHard,
                  std::memory_order_relaxed);

  // Value-preserving reclamation at a full epoch barrier — the same
  // observable pattern Checkpoint() performs, so delivered streams stay
  // byte-exact with governance on.
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  CRAQR_RETURN_NOT_OK(CollectLocked());
  ops::ValuePool& pool = PoolLocked();
  // Rotate BEFORE re-interning: evacuated strings then land in the fresh
  // generation as first sights and die with their holders at a later
  // retirement. Re-interning into the *old* current generation would count
  // as a second sight and promote every live string into the persistent
  // tier — a slow permanent leak that defeats the plateau.
  pool.RotateGeneration();
  // Evacuate every live string holder into fresh handles before the
  // retirement below invalidates the older rotating generations:
  // shard-side operator buffers + chain inboxes (on the worker, which owns
  // the fabricator), then the router-side merge stages, shed spools and
  // crash replay logs.
  for (auto& shard : shards_) {
    CRAQR_RETURN_NOT_OK(
        shard->RunControl([&pool](fabric::StreamFabricator& f) {
          f.ReinternStrings(pool);
          f.TrimMemory();
        }));
  }
  for (auto& [id, qs] : queries_) {
    (void)id;
    for (const auto& op : qs.merge_pipeline.operators()) {
      op->ReinternStrings(pool);
    }
    for (SpooledDelivery& held : qs.spool) {
      held.batch.ReinternStrings(pool);
    }
  }
  for (auto& log : shard_replay_) {
    for (ReplayEntry& entry : log) {
      entry.batch.ReinternStrings(pool);
    }
  }
  const std::uint64_t retired_before = pool.generations_retired();
  std::size_t reclaimed =
      pool.RetireGenerationsBelow(pool.current_generation());
  for (auto& shard : shards_) {
    reclaimed += shard->arena().Trim();
  }
  governor_->RecordRetirement(pool.generations_retired() - retired_before);
  governor_->RecordReclaim(reclaimed);

  // Reassess with the post-reclamation accounting: hard pressure persists
  // only while reclamation alone cannot get back under the watermark.
  const MemoryPressure after = governor_->Assess(AccountMemoryLocked());
  mem_hard_.store(after == MemoryPressure::kHard, std::memory_order_relaxed);
  return Status::OK();
}

Status ShardedFabricator::SetDeliveryCredits(query::QueryId id,
                                             std::uint64_t credits) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  it->second.credits = credits;
  return DrainSpoolLocked(it->second);
}

Status ShardedFabricator::AddDeliveryCredits(query::QueryId id,
                                             std::uint64_t credits) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  QueryState& qs = it->second;
  if (qs.credits != kUnlimitedCredits) {
    // Saturate one below kUnlimitedCredits: adding credits must never
    // accidentally lift a finite budget to "unlimited".
    if (credits >= kUnlimitedCredits - qs.credits) {
      qs.credits = kUnlimitedCredits - 1;
    } else {
      qs.credits += credits;
    }
  }
  return DrainSpoolLocked(qs);
}

Result<std::size_t> ShardedFabricator::SpooledEpochs(query::QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  return it->second.spool.size();
}

Status ShardedFabricator::CheckpointLocked() {
  if (!config_.checkpoint.enabled) {
    return Status::FailedPrecondition(
        "checkpointing is not enabled (ShardedConfig::checkpoint.enabled)");
  }
  if (CRAQR_FAULT_FIRE("runtime.alloc_fail", nullptr)) {
    fault_injections_->Increment();
    return Status::ResourceExhausted(
        "fault injection: checkpoint allocation failed");
  }
  // A stable point: every enqueued batch processed and every delivery
  // collected, so the snapshot holds no half-applied epoch and the replay
  // logs can restart empty.
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  CRAQR_RETURN_NOT_OK(CollectLocked());
  CheckpointState next;
  next.epoch = last_enqueued_epoch_;
  next.shard_blobs.resize(shards_.size());
  next.local_to_router.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Status saved = Status::OK();
    std::string blob;
    CRAQR_RETURN_NOT_OK(shards_[i]->RunControl(
        [&saved, &blob](fabric::StreamFabricator& f) {
          saved = f.SaveState(&blob);
        }));
    CRAQR_RETURN_NOT_OK(saved);
    next.shard_blobs[i] = std::move(blob);
  }
  for (const auto& [id, qs] : queries_) {
    for (const ShardAttachment& a : qs.attachments) {
      next.local_to_router[a.shard].emplace(a.local_id, id);
    }
  }
  next.valid = true;
  checkpoint_ = std::move(next);
  for (auto& log : shard_replay_) {
    log.clear();
  }
  std::fill(replay_truncated_.begin(), replay_truncated_.end(), 0);
  fault_checkpoints_->Increment();
  return Status::OK();
}

Status ShardedFabricator::Checkpoint() {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = CheckpointLocked();
  ReplayViolationsAndUnlock(lock);
  return status;
}

bool ShardedFabricator::HasCheckpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_.valid;
}

std::uint64_t ShardedFabricator::CheckpointEpoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return checkpoint_.epoch;
}

Status ShardedFabricator::SaveCheckpointToFile(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!checkpoint_.valid) {
    return Status::FailedPrecondition("no checkpoint to save");
  }
  StateWriter w;
  w.WriteU32(kCheckpointFileMagic);
  w.WriteU32(kCheckpointFileVersion);
  w.WriteU64(checkpoint_.epoch);
  w.WriteU64(shards_.size());
  w.WriteU64(grid_.NumCells());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const auto& map = checkpoint_.local_to_router[i];
    std::vector<std::pair<query::QueryId, query::QueryId>> entries(
        map.begin(), map.end());
    std::sort(entries.begin(), entries.end());
    w.WriteU64(entries.size());
    for (const auto& [local, router] : entries) {
      w.WriteU64(local);
      w.WriteU64(router);
    }
    w.WriteString(checkpoint_.shard_blobs[i]);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out.write(w.bytes().data(), static_cast<std::streamsize>(w.bytes().size()));
  out.flush();
  if (!out) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Status ShardedFabricator::LoadCheckpointFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::lock_guard<std::mutex> lock(mu_);
  if (!config_.checkpoint.enabled) {
    return Status::FailedPrecondition(
        "checkpointing is not enabled (ShardedConfig::checkpoint.enabled)");
  }
  StateReader r(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  CRAQR_RETURN_NOT_OK(r.ReadU32(&magic));
  CRAQR_RETURN_NOT_OK(r.ReadU32(&version));
  if (magic != kCheckpointFileMagic || version != kCheckpointFileVersion) {
    return Status::InvalidArgument("unrecognized checkpoint file " + path);
  }
  std::uint64_t epoch = 0;
  std::uint64_t num_shards = 0;
  std::uint64_t num_cells = 0;
  CRAQR_RETURN_NOT_OK(r.ReadU64(&epoch));
  CRAQR_RETURN_NOT_OK(r.ReadU64(&num_shards));
  CRAQR_RETURN_NOT_OK(r.ReadU64(&num_cells));
  if (num_shards != shards_.size() || num_cells != grid_.NumCells()) {
    return Status::InvalidArgument(
        "checkpoint topology mismatch: file has " +
        std::to_string(num_shards) + " shard(s) over " +
        std::to_string(num_cells) + " cell(s), runtime has " +
        std::to_string(shards_.size()) + " over " +
        std::to_string(grid_.NumCells()));
  }
  CheckpointState next;
  next.epoch = epoch;
  next.shard_blobs.resize(shards_.size());
  next.local_to_router.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::uint64_t entries = 0;
    CRAQR_RETURN_NOT_OK(r.ReadU64(&entries));
    for (std::uint64_t e = 0; e < entries; ++e) {
      std::uint64_t local = 0;
      std::uint64_t router = 0;
      CRAQR_RETURN_NOT_OK(r.ReadU64(&local));
      CRAQR_RETURN_NOT_OK(r.ReadU64(&router));
      next.local_to_router[i].emplace(local, router);
    }
    CRAQR_RETURN_NOT_OK(r.ReadString(&next.shard_blobs[i]));
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument("trailing bytes in checkpoint file " +
                                   path);
  }
  next.valid = true;
  checkpoint_ = std::move(next);
  // Only epochs enqueued after the load are replayable against it.
  for (auto& log : shard_replay_) {
    log.clear();
  }
  std::fill(replay_truncated_.begin(), replay_truncated_.end(), 0);
  return Status::OK();
}

Status ShardedFabricator::CrashAndRestoreLocked(std::size_t victim) {
  if (victim >= shards_.size()) {
    return Status::InvalidArgument("shard index " + std::to_string(victim) +
                                   " out of range");
  }
  if (!checkpoint_.valid) {
    return Status::FailedPrecondition(
        "no checkpoint (ShardedConfig::checkpoint.enabled)");
  }
  if (replay_truncated_[victim] != 0) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(victim) +
        " replay log was truncated; byte-exact recovery is impossible "
        "until the next Checkpoint()");
  }
  const bool timed = obs::IsEnabled();
  const std::uint64_t t0 = timed ? obs::NowNs() : 0;
  // The crash lands at an epoch boundary: every enqueued batch completes
  // first, so the victim's replay log is exactly its input since the
  // checkpoint and nothing is mid-batch when the fabricator dies.
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  Shard* shard = shards_[victim].get();
  CRAQR_RETURN_NOT_OK(shard->CrashFabricator());
  const auto& local_to_router = checkpoint_.local_to_router[victim];
  std::unordered_map<query::QueryId, query::QueryId> id_map;
  Status restored = Status::OK();
  CRAQR_RETURN_NOT_OK(shard->RunControl([&restored, &id_map, shard,
                                         &local_to_router, this,
                                         victim](fabric::StreamFabricator& f) {
    restored = f.RestoreState(
        checkpoint_.shard_blobs[victim],
        [shard, &local_to_router](query::QueryId snap_id)
            -> ops::SinkOperator::BatchCallback {
          const auto it = local_to_router.find(snap_id);
          if (it == local_to_router.end()) {
            return nullptr;
          }
          const query::QueryId router_id = it->second;
          return [shard, router_id](const ops::TupleBatch& batch) {
            shard->DeliverBatch(router_id, batch);
          };
        },
        &id_map);
  }));
  CRAQR_RETURN_NOT_OK(restored);
  // Re-point the router's attachments at the restored fabricator's ids.
  // Resolve each attachment through its router id, NOT through its current
  // local id: after a previous restore of this same shard the attachment
  // already carries a restored id, while id_map stays keyed by the
  // checkpoint's snapshot-local ids (the blob never changes between
  // checkpoints). The checkpoint refreshes on every topology change, so
  // every live query on the victim has exactly one snapshot entry.
  std::unordered_map<query::QueryId, query::QueryId> router_to_snapshot;
  router_to_snapshot.reserve(local_to_router.size());
  for (const auto& [snap_id, router_id] : local_to_router) {
    router_to_snapshot.emplace(router_id, snap_id);
  }
  for (auto& [id, qs] : queries_) {
    for (ShardAttachment& a : qs.attachments) {
      if (a.shard != victim) {
        continue;
      }
      const auto snap = router_to_snapshot.find(id);
      const auto found = snap != router_to_snapshot.end()
                             ? id_map.find(snap->second)
                             : id_map.end();
      if (found == id_map.end()) {
        return Status::Internal("restored shard " + std::to_string(victim) +
                                " lost the partial stream of query " +
                                std::to_string(id));
      }
      a.local_id = found->second;
    }
  }
  // Replay the held epochs with their original stamps. The log survives
  // intact so a repeat crash before the next checkpoint replays the same
  // prefix.
  for (const ReplayEntry& entry : shard_replay_[victim]) {
    ops::TupleBatch copy;
    copy.CopyFrom(entry.batch);
    CRAQR_RETURN_NOT_OK(shard->EnqueueBatch(std::move(copy), entry.epoch));
  }
  CRAQR_RETURN_NOT_OK(shard->Drain());
  CRAQR_RETURN_NOT_OK(shard->status());
  // The replay regenerated deliveries and violations the router already
  // collected; discard those, keep everything later for the next collect.
  (void)shard->TakeOutbox(collected_through_);
  fault_shard_crashes_->Increment();
  if (timed) {
    fault_recovery_ns_->Record(obs::NowNs() - t0);
  }
  return Status::OK();
}

Status ShardedFabricator::InjectShardCrash(std::size_t shard) {
  std::unique_lock<std::mutex> lock(mu_);
  const Status status = CrashAndRestoreLocked(shard);
  ReplayViolationsAndUnlock(lock);
  return status;
}

Status ShardedFabricator::MaybeInjectCrashLocked() {
  std::uint64_t victim = 0;
  if (!CRAQR_FAULT_FIRE("runtime.shard_crash", &victim)) {
    return Status::OK();
  }
  fault_injections_->Increment();
  return CrashAndRestoreLocked(static_cast<std::size_t>(victim) %
                               shards_.size());
}

void ShardedFabricator::WatchdogLoop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  while (!watchdog_stop_) {
    watchdog_cv_.wait_for(
        lock,
        std::chrono::milliseconds(config_.admission.watchdog_interval_ms));
    if (watchdog_stop_) {
      break;
    }
    // Lock-free sampling: atomic load counters plus the queue size — the
    // watchdog must stay responsive precisely when workers (and therefore
    // mu_ holders blocked on them) are stuck.
    bool any_stalled = false;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const Shard::Load load = shards_[i]->LoadSnapshot();
      if (load.queue_depth > 0 &&
          load.batches_processed == watchdog_prev_batches_[i]) {
        ++watchdog_ticks_[i];
        if (watchdog_ticks_[i] == config_.admission.watchdog_stall_ticks) {
          // Once per stall episode, at the crossing tick.
          fault_worker_stalls_->Increment();
        }
        if (watchdog_ticks_[i] >= config_.admission.watchdog_stall_ticks) {
          any_stalled = true;
        }
      } else {
        watchdog_ticks_[i] = 0;
      }
      watchdog_prev_batches_[i] = load.batches_processed;
    }
    degraded_.store(any_stalled, std::memory_order_relaxed);
    admission_degraded_->Set(any_stalled ? 1 : 0);
  }
}

Result<fabric::QueryStream> ShardedFabricator::GetStream(
    query::QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  return it->second.stream;
}

Result<std::vector<geom::CellIndex>> ShardedFabricator::QueryCells(
    query::QueryId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(id) + " is not live");
  }
  return it->second.cells;
}

std::size_t ShardedFabricator::NumQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queries_.size();
}

ShardedStats ShardedFabricator::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto stats = SnapshotLocked();
  if (!stats.ok()) {
    // No Status channel in this signature; the latched shard error still
    // surfaces on the next ProcessBatch/Drain/TrySnapshot.
    CRAQR_LOG(ERROR) << "Snapshot barrier failed, returning zeroed stats: "
                     << stats.status().ToString();
    return ShardedStats();
  }
  return *stats;
}

Result<ShardedStats> ShardedFabricator::TrySnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SnapshotLocked();
}

Result<ShardedStats> ShardedFabricator::SnapshotLocked() const {
  ShardedStats stats;
  // The barrier publishes every worker's writes; afterwards the workers
  // block on their empty queues, so reading the fabricators is safe.
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  stats.tuples_unrouted = router_unrouted_;
  // The runtime's actual pool — an instance pool when configured, the
  // process Global() pool otherwise (the pre-governance hardcode reported
  // Global() regardless, which read 0 growth for instance-pool embedders).
  ops::ValuePool& pool = PoolLocked();
  stats.value_pool_bytes = pool.ApproxBytes();
  stats.pool_generations_retired = pool.generations_retired();
  stats.memory_pressure =
      governor_ != nullptr ? static_cast<int>(governor_->pressure()) : 0;
  stats.routing_version = routing_version_;
  stats.rebalance_events = rebalance_events_;
  stats.cells_migrated = cells_migrated_;
  // Routing-table ownership census; cheap relative to the barrier above
  // and coherent with it (the table only changes under mu_).
  std::vector<std::size_t> cells_owned(shards_.size(), 0);
  if (!shard_for_flat_.empty()) {
    for (std::size_t c = 0; c + 1 < shard_for_flat_.size(); ++c) {
      if (shard_for_flat_[c] < cells_owned.size()) {
        ++cells_owned[shard_for_flat_[c]];
      }
    }
  } else {
    for (std::uint32_t q = 0; q < grid_.CellsPerSide(); ++q) {
      for (std::uint32_t r = 0; r < grid_.CellsPerSide(); ++r) {
        ++cells_owned[ShardForCellLocked({q, r})];
      }
    }
  }
  stats.per_shard.resize(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    const fabric::StreamFabricator& f = shard.fabricator();
    stats.tuples_routed += f.tuples_routed();
    stats.tuples_unrouted += f.tuples_unrouted();
    stats.total_operator_evaluations += f.TotalOperatorEvaluations();
    stats.total_operators += f.TotalOperators();
    stats.materialized_cells += f.NumMaterializedCells();
    stats.shared_prefix_hits += f.shared_prefix_hits();
    stats.taps_detached += f.taps_detached();
    stats.stages_shared += f.SharedStagesLive();
    stats.arena_free_bytes += shard.arena().free_bytes();
    stats.arena_high_water_bytes += shard.arena().high_water_bytes();
    stats.arena_reuses += shard.arena().reuses();
    // Each cell lives on exactly one shard, so concatenating the per-shard
    // censuses never aliases a flat cell; one sort restores global order.
    for (const auto& entry : f.SharedStageCensus()) {
      stats.shared_stage_census.push_back(entry);
    }
    ShardLoadStats& load = stats.per_shard[i];
    load.shard = i;
    // Router-side counters under mu_, worker-side counters in one coherent
    // pass — with the barrier above this yields processed == enqueued and
    // queue_depth == 0 (the ShardLoadStats consistency contract).
    load.tuples_enqueued = shard_tuples_enqueued_[i]->value();
    load.batches_enqueued = shard_batches_enqueued_[i]->value();
    const Shard::Load worker = shard.LoadSnapshot();
    load.tuples_processed = worker.tuples_processed;
    load.batches_processed = worker.batches_processed;
    load.busy_ns = worker.busy_ns;
    load.queue_depth = worker.queue_depth;
    load.steals = shard.steals();
    load.cells_owned = cells_owned[i];
  }
  for (const auto& [id, qs] : queries_) {
    (void)id;
    stats.total_operator_evaluations +=
        qs.merge_pipeline.TotalOperatorEvaluations();
    stats.total_operators += qs.merge_pipeline.size();
  }
  stats.live_queries = queries_.size();
  std::sort(stats.shared_stage_census.begin(),
            stats.shared_stage_census.end());
  return stats;
}

Status ShardedFabricator::ValidateInvariants() const {
  std::lock_guard<std::mutex> lock(mu_);
  CRAQR_RETURN_NOT_OK(BarrierLocked());
  for (const auto& shard : shards_) {
    CRAQR_RETURN_NOT_OK(shard->fabricator().ValidateInvariants());
  }
  const auto fail = [](const std::string& what) {
    return Status::Internal("runtime invariant violated: " + what);
  };
  for (const auto& [id, qs] : queries_) {
    if (qs.attachments.empty()) {
      return fail("query " + std::to_string(id) + " has no shard attachments");
    }
    for (const ShardAttachment& a : qs.attachments) {
      if (a.shard >= shards_.size()) {
        return fail("query " + std::to_string(id) + " attached to bad shard");
      }
      const auto local = shards_[a.shard]->fabricator().GetStream(a.local_id);
      if (!local.ok()) {
        return fail("query " + std::to_string(id) +
                    " lost its partial stream on shard " +
                    std::to_string(a.shard));
      }
      if (local->attribute != qs.stream.attribute) {
        return fail("query " + std::to_string(id) +
                    " partial stream attribute mismatch");
      }
    }
    for (const geom::CellIndex& cell : qs.cells) {
      const std::size_t owner = ShardForCellLocked(cell);
      const bool attached =
          std::any_of(qs.attachments.begin(), qs.attachments.end(),
                      [owner](const ShardAttachment& a) {
                        return a.shard == owner;
                      });
      if (!attached) {
        return fail("query " + std::to_string(id) + " cell " +
                    cell.ToString() + " owned by unattached shard");
      }
    }
    // Counter conservation across batch emits, cross-shard edition: every
    // merge-stage operator accounts tuples_in/out exactly like the
    // per-tuple path...
    for (const auto& op : qs.merge_pipeline.operators()) {
      CRAQR_RETURN_NOT_OK(ops::ValidateStatsConservation(*op));
    }
    CRAQR_RETURN_NOT_OK(
        fabric::ValidateMergeStageCounters(qs.stream, *qs.merge_head));
    // ...and the merge head never sees more tuples than the shard partial
    // streams delivered (deliveries still sitting in shard outboxes make
    // this an inequality, not an equality).
    std::uint64_t partial_delivered = 0;
    for (const ShardAttachment& a : qs.attachments) {
      const auto local = shards_[a.shard]->fabricator().GetStream(a.local_id);
      if (local.ok()) {
        partial_delivered += local->sink->total_received();
      }
    }
    if (qs.merge_head->stats().tuples_in > partial_delivered) {
      return fail("query " + std::to_string(id) + " merge head received " +
                  std::to_string(qs.merge_head->stats().tuples_in) +
                  " tuples but shard partial streams only delivered " +
                  std::to_string(partial_delivered));
    }
  }
  return Status::OK();
}

std::string ShardedFabricator::DescribeTopology() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  if (!BarrierLocked().ok()) {
    return "<runtime failed>";
  }
  for (const auto& shard : shards_) {
    os << "shard " << shard->index() << ":\n"
       << shard->fabricator().DescribeTopology();
  }
  for (const auto& [id, qs] : queries_) {
    os << "Q" << id << " merge: " << qs.attachments.size()
       << " shard stream(s) -> "
       << (qs.merge_head->kind() == ops::OperatorKind::kUnion ? "U" : "Id")
       << " -> Mon -> Sink\n";
  }
  return os.str();
}

}  // namespace runtime
}  // namespace craqr
