#include "runtime/memory_governor.h"

#include "runtime/faultpoint.h"

namespace craqr {
namespace runtime {

MemoryGovernor::MemoryGovernor(const MemoryGovernorConfig& config)
    : config_(config) {
  // Process-wide families, registered unconditionally (like the admission
  // and fault families) so the exporter always carries them.
  budget_bytes_ = obs::GetGauge("craqr.mem.budget_bytes");
  pool_bytes_ = obs::GetGauge("craqr.mem.pool_bytes");
  arena_bytes_ = obs::GetGauge("craqr.mem.arena_bytes");
  queue_bytes_ = obs::GetGauge("craqr.mem.queue_bytes");
  total_bytes_ = obs::GetGauge("craqr.mem.total_bytes");
  high_water_bytes_ = obs::GetGauge("craqr.mem.high_water_bytes");
  pressure_gauge_ = obs::GetGauge("craqr.mem.pressure");
  soft_events_ = obs::GetCounter("craqr.mem.soft_events");
  hard_events_ = obs::GetCounter("craqr.mem.hard_events");
  generations_retired_ = obs::GetCounter("craqr.mem.generations_retired");
  bytes_reclaimed_ = obs::GetCounter("craqr.mem.bytes_reclaimed");
  fault_injections_ = obs::GetCounter("craqr.fault.injections");
  budget_bytes_->Set(static_cast<std::int64_t>(config_.budget_bytes));
}

MemoryPressure MemoryGovernor::Assess(const Usage& usage) {
  const std::size_t total = usage.Total();
  pool_bytes_->Set(static_cast<std::int64_t>(usage.pool_bytes));
  arena_bytes_->Set(static_cast<std::int64_t>(usage.arena_bytes));
  queue_bytes_->Set(static_cast<std::int64_t>(usage.queue_bytes));
  total_bytes_->Set(static_cast<std::int64_t>(total));
  if (total > high_water_) {
    high_water_ = total;
    high_water_bytes_->Set(static_cast<std::int64_t>(high_water_));
  }

  MemoryPressure next = MemoryPressure::kNone;
  if (enabled()) {
    const auto budget = static_cast<double>(config_.budget_bytes);
    const auto used = static_cast<double>(total);
    if (used >= config_.hard_watermark * budget) {
      next = MemoryPressure::kHard;
    } else if (used >= config_.soft_watermark * budget) {
      next = MemoryPressure::kSoft;
    }
  }
  // Deterministic override for tests/soak harnesses: an armed fire forces
  // the level regardless of the real accounting.
  std::uint64_t forced = 0;
  if (CRAQR_FAULT_FIRE("runtime.mem_pressure", &forced)) {
    fault_injections_->Increment();
    next = forced >= 2 ? MemoryPressure::kHard : MemoryPressure::kSoft;
  }

  const MemoryPressure prev = pressure_.load(std::memory_order_relaxed);
  if (next == MemoryPressure::kSoft && prev != MemoryPressure::kSoft) {
    soft_events_->Increment();
  } else if (next == MemoryPressure::kHard && prev != MemoryPressure::kHard) {
    hard_events_->Increment();
  }
  pressure_.store(next, std::memory_order_relaxed);
  pressure_gauge_->Set(static_cast<std::int64_t>(next));
  return next;
}

}  // namespace runtime
}  // namespace craqr
