#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"

/// \file memory_governor.h
/// \brief Budgeted memory governance for long-lived runtimes.
///
/// A CrAQR deployment runs for weeks: unbounded growth anywhere — the
/// string pool fed by free-form payloads, recycled batch storage, shard
/// queue backlogs — eventually kills the process. The governor closes the
/// loop: the runtime polls it each epoch with cheap byte accounting
/// (ValuePool::ApproxBytes + per-shard BatchArena::free_bytes +
/// Shard::queue_bytes), it classifies the total against a budget, and the
/// runtime reacts in two stages:
///
///  - **soft** (total >= soft_watermark * budget): value-preserving
///    reclamation — re-intern every live string holder, retire the string
///    pool's rotating generations, trim arenas and operator scratch.
///    Delivered streams are byte-identical with governance on or off.
///  - **hard** (total >= hard_watermark * budget): graceful degradation —
///    the runtime additionally engages the overload shed policies
///    (ShedPolicy::kDropOldest / kReject) for every query, switches shard
///    queue pushes to try-once, and surfaces degraded(); fresh data keeps
///    flowing at bounded memory instead of the process OOMing.
///
/// Telemetry lives under `craqr.mem.*` (process-wide families, registered
/// unconditionally). The `runtime.mem_pressure` fault-point site forces a
/// pressure level deterministically for tests (param 1 = soft, 2 = hard).

namespace craqr {
namespace runtime {

/// \brief Pressure classification of one accounting poll.
enum class MemoryPressure : int {
  kNone = 0,
  kSoft = 1,
  kHard = 2,
};

/// \brief Memory-governance parameters (ShardedConfig::memory,
/// EngineConfig::memory_budget_bytes).
struct MemoryGovernorConfig {
  /// Total byte budget across pool + arenas + shard queues. 0 (the
  /// default) disables governance entirely.
  std::size_t budget_bytes = 0;
  /// Fraction of the budget at which value-preserving reclamation starts.
  double soft_watermark = 0.70;
  /// Fraction of the budget at which graceful degradation (shedding)
  /// engages on top of reclamation.
  double hard_watermark = 0.90;
  /// Hard-pressure shed policy: false = ShedPolicy::kDropOldest (bounded
  /// spool, freshest data wins), true = ShedPolicy::kReject (drop
  /// immediately, spool nothing).
  bool hard_reject = false;
};

/// \brief Classifies polled byte accounting against the budget and keeps
/// the craqr.mem.* telemetry current. Thread-safe for the read accessors;
/// Assess() is serialized by the owning runtime's mutex.
class MemoryGovernor {
 public:
  /// One accounting poll's inputs.
  struct Usage {
    /// ops::ValuePool::ApproxBytes() of the governed pool.
    std::size_t pool_bytes = 0;
    /// Sum of BatchArena::free_bytes() across shards.
    std::size_t arena_bytes = 0;
    /// Sum of Shard::queue_bytes() (enqueued-but-unprocessed batches).
    std::size_t queue_bytes = 0;

    std::size_t Total() const {
      return pool_bytes + arena_bytes + queue_bytes;
    }
  };

  explicit MemoryGovernor(const MemoryGovernorConfig& config);

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  /// Governance active (budget_bytes > 0).
  bool enabled() const { return config_.budget_bytes > 0; }

  const MemoryGovernorConfig& config() const { return config_; }

  /// \brief Classifies one poll: updates the byte gauges, fires the
  /// "runtime.mem_pressure" fault point (an armed fire forces the level:
  /// param 1 = soft, 2 = hard), counts level *transitions* into
  /// soft/hard, and publishes the new level.
  MemoryPressure Assess(const Usage& usage);

  /// The level the last Assess() published.
  MemoryPressure pressure() const {
    return pressure_.load(std::memory_order_relaxed);
  }

  /// Accounts bytes freed by a reclamation pass (craqr.mem.bytes_reclaimed).
  void RecordReclaim(std::size_t bytes) { bytes_reclaimed_->Add(bytes); }

  /// Accounts pool generations retired (craqr.mem.generations_retired).
  void RecordRetirement(std::uint64_t generations) {
    generations_retired_->Add(generations);
  }

 private:
  const MemoryGovernorConfig config_;
  std::atomic<MemoryPressure> pressure_{MemoryPressure::kNone};

  /// \name craqr.mem.* telemetry (process-wide families)
  ///@{
  obs::Gauge* budget_bytes_ = nullptr;
  obs::Gauge* pool_bytes_ = nullptr;
  obs::Gauge* arena_bytes_ = nullptr;
  obs::Gauge* queue_bytes_ = nullptr;
  obs::Gauge* total_bytes_ = nullptr;
  obs::Gauge* high_water_bytes_ = nullptr;
  obs::Gauge* pressure_gauge_ = nullptr;
  obs::Counter* soft_events_ = nullptr;
  obs::Counter* hard_events_ = nullptr;
  obs::Counter* generations_retired_ = nullptr;
  obs::Counter* bytes_reclaimed_ = nullptr;
  /// Shared craqr.fault.injections family (forced-pressure fires count
  /// like every other injected fault).
  obs::Counter* fault_injections_ = nullptr;
  ///@}
  /// Highest total ever assessed (backs the high-water gauge; gauges are
  /// last-write-wins, so the max is tracked here).
  std::size_t high_water_ = 0;
};

}  // namespace runtime
}  // namespace craqr
