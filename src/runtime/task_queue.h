#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

/// \file task_queue.h
/// \brief Bounded blocking MPSC queue feeding a shard's worker thread.
///
/// Producers (the engine thread, benchmark drivers, concurrent control
/// planes) push batch and control tasks; a single worker per shard pops
/// them in FIFO order, so control commands stay ordered relative to the
/// tuple batches around them. The bound applies back-pressure: when a
/// shard falls behind, producers block instead of growing the queue
/// without limit.

namespace craqr {
namespace runtime {

/// \brief Bounded blocking FIFO queue (multi-producer, single-consumer).
template <typename T>
class BoundedTaskQueue {
 public:
  /// Creates a queue holding at most `capacity` items (>= 1 enforced).
  explicit BoundedTaskQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedTaskQueue(const BoundedTaskQueue&) = delete;
  BoundedTaskQueue& operator=(const BoundedTaskQueue&) = delete;

  /// Blocks while the queue is full; returns false when the queue has
  /// been closed (the item is dropped).
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// \brief Non-blocking push for credit-based admission: fails fast
  /// instead of applying back-pressure. Returns kAccepted on success,
  /// kFull when the caller should shed, kClosed when the queue is closed
  /// (the item is dropped in both failure cases).
  enum class PushResult { kAccepted, kFull, kClosed };

  PushResult TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      return PushResult::kClosed;
    }
    if (items_.size() >= capacity_) {
      return PushResult::kFull;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return PushResult::kAccepted;
  }

  /// \brief Bounded-wait push: blocks up to `timeout` for a slot, then
  /// fails with kFull. The middle ground between Push (block forever —
  /// a stalled worker wedges the producer) and TryPush (shed
  /// immediately). Close() while waiting wakes the producer with kClosed.
  template <typename Rep, typename Period>
  PushResult PushFor(T item, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool ready = not_full_.wait_for(lock, timeout, [this] {
      return closed_ || items_.size() < capacity_;
    });
    if (closed_) {
      return PushResult::kClosed;
    }
    if (!ready) {
      return PushResult::kFull;
    }
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return PushResult::kAccepted;
  }

  /// Blocks while the queue is empty; returns std::nullopt once the queue
  /// is closed and fully drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop for work-stealing consumers that interleave their
  /// own queue with peers' job boards. Returns std::nullopt when nothing
  /// is queued; `*closed` (optional) reports whether the queue is closed
  /// and fully drained — the consumer's exit signal.
  std::optional<T> TryPop(bool* closed = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      if (closed != nullptr) {
        *closed = closed_;
      }
      return std::nullopt;
    }
    if (closed != nullptr) {
      *closed = false;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pending items remain poppable, further pushes fail,
  /// and blocked consumers wake up.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Items currently queued.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Maximum items held before Push blocks.
  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace runtime
}  // namespace craqr
