#include "runtime/rebalancer.h"

#include <algorithm>
#include <limits>

namespace craqr {
namespace runtime {

Rebalancer::Rebalancer(const RebalanceConfig& config, std::size_t num_shards)
    : config_(config), num_shards_(num_shards) {
  if (config_.imbalance_trigger < 1.0) {
    config_.imbalance_trigger = 1.0;
  }
}

RebalancePlan Rebalancer::Plan(const std::vector<std::uint64_t>& cell_load,
                               const std::vector<std::uint32_t>& cell_owner,
                               const std::vector<std::uint64_t>& shard_busy_ns) {
  RebalancePlan plan;
  plan.shard_load.assign(num_shards_, 0);
  // Age the cooldowns first: cells pinned by an earlier round become
  // movable again after cooldown_events rounds.
  for (auto it = cooldown_.begin(); it != cooldown_.end();) {
    if (--(it->second) == 0) {
      it = cooldown_.erase(it);
    } else {
      ++it;
    }
  }
  if (num_shards_ < 2) {
    return plan;
  }
  const std::size_t num_cells = std::min(cell_load.size(), cell_owner.size());
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < num_cells; ++c) {
    const std::uint32_t owner = cell_owner[c];
    if (owner >= num_shards_) {
      continue;  // sentinel / out-of-range entries carry no load
    }
    plan.shard_load[owner] += cell_load[c];
    total += cell_load[c];
  }
  if (total == 0) {
    return plan;
  }
  const double mean = static_cast<double>(total) /
                      static_cast<double>(num_shards_);
  const std::uint64_t max_load =
      *std::max_element(plan.shard_load.begin(), plan.shard_load.end());
  const bool tuples_imbalanced =
      static_cast<double>(max_load) >= config_.imbalance_trigger * mean;
  bool busy_imbalanced = false;
  if (shard_busy_ns.size() == num_shards_) {
    std::uint64_t busy_total = 0;
    std::uint64_t busy_max = 0;
    for (const std::uint64_t busy : shard_busy_ns) {
      busy_total += busy;
      busy_max = std::max(busy_max, busy);
    }
    if (busy_total > 0) {
      const double busy_mean = static_cast<double>(busy_total) /
                               static_cast<double>(num_shards_);
      busy_imbalanced = static_cast<double>(busy_max) >=
                        config_.imbalance_trigger * busy_mean;
    }
  }
  // Either signal arms the planner: routed tuples catch hot cells
  // directly; busy time catches cells whose operator chains are expensive
  // per tuple. The greedy loop below then works on tuple weights — the
  // signal that attributes load to individual cells.
  if (!tuples_imbalanced && !busy_imbalanced) {
    return plan;
  }
  // Per-shard movable cells, heaviest first (ties broken by lower flat
  // index for determinism).
  std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>> movable(
      num_shards_);
  for (std::size_t c = 0; c < num_cells; ++c) {
    const std::uint32_t owner = cell_owner[c];
    if (owner >= num_shards_ || cell_load[c] < config_.min_cell_tuples ||
        cell_load[c] == 0) {
      continue;
    }
    if (cooldown_.find(static_cast<std::uint32_t>(c)) != cooldown_.end()) {
      continue;
    }
    movable[owner].emplace_back(cell_load[c], static_cast<std::uint32_t>(c));
  }
  for (auto& cells : movable) {
    std::sort(cells.begin(), cells.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first > b.first
                                          : a.second < b.second;
              });
  }
  std::vector<std::uint64_t> working = plan.shard_load;
  while (plan.moves.size() < config_.max_moves_per_event) {
    std::size_t hottest = 0;
    std::size_t coldest = 0;
    for (std::size_t i = 1; i < num_shards_; ++i) {
      if (working[i] > working[hottest]) {
        hottest = i;
      }
      if (working[i] < working[coldest]) {
        coldest = i;
      }
    }
    // Once armed, balance down toward the mean (not merely under the
    // trigger — a busy-time arming would otherwise never move anything).
    // Churn protection comes from the arming trigger plus the per-cell
    // cooldown, not from stopping early.
    if (static_cast<double>(working[hottest]) <= mean) {
      break;
    }
    const std::uint64_t gap = working[hottest] - working[coldest];
    // Heaviest cell of the hottest shard that strictly narrows the gap
    // (weight < gap keeps the move from simply swapping roles).
    auto& candidates = movable[hottest];
    std::size_t pick = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (candidates[i].first < gap) {
        pick = i;
        break;
      }
    }
    if (pick == candidates.size()) {
      break;  // nothing movable without making matters worse
    }
    const auto [weight, cell] = candidates[pick];
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    plan.moves.push_back({cell, hottest, coldest, weight});
    working[hottest] -= weight;
    working[coldest] += weight;
    // Pin the cell: one extra round because the count is aged at the top
    // of each Plan call, including the next one.
    cooldown_[cell] = config_.cooldown_events + 1;
  }
  return plan;
}

}  // namespace runtime
}  // namespace craqr
