#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "ops/tuple_batch.h"

/// \file batch_arena.h
/// \brief Fixed-pool recycling of TupleBatch storage across producer /
/// consumer threads.
///
/// Operators already recycle their *member* scratch batches (Clear keeps
/// capacity), but storage that changes hands — shard outbox splices
/// (created on the worker, destroyed on the router after collection) and
/// replay-log entries — used to be allocated fresh and freed every epoch.
/// A BatchArena closes that loop: the consumer Release()s consumed batches
/// back instead of destroying them and the producer Acquire()s warmed
/// storage instead of default-constructing, so steady-state epochs run
/// allocation-free regardless of how long the process lives.
///
/// Thread-safe (one uncontended mutex per transfer — transfers are
/// per-delivered-batch, not per-tuple). The free list is bounded
/// (`max_free` batches) so a burst can't park unbounded slack; Trim()
/// releases everything, which is the memory governor's soft-pressure
/// action. `free_bytes`/`high_water_bytes` feed the governor's accounting
/// and the craqr.mem.* gauges.

namespace craqr {
namespace runtime {

/// \brief Bounded thread-safe free list of recycled TupleBatch storage
/// (see file comment).
class BatchArena {
 public:
  explicit BatchArena(std::size_t max_free = 256) : max_free_(max_free) {}

  BatchArena(const BatchArena&) = delete;
  BatchArena& operator=(const BatchArena&) = delete;

  /// An empty batch, with recycled column capacity when the free list has
  /// one (counted in `reuses`), freshly constructed otherwise.
  ops::TupleBatch Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    ++acquires_;
    if (free_.empty()) {
      return ops::TupleBatch();
    }
    ++reuses_;
    ops::TupleBatch batch = std::move(free_.back());
    free_.pop_back();
    free_bytes_ -= batch.ApproxBytes();
    return batch;
  }

  /// Returns consumed storage to the pool (cleared; capacity kept). When
  /// the free list is full the storage is simply dropped — the bound is
  /// what keeps a burst from parking unbounded slack.
  void Release(ops::TupleBatch&& batch) {
    batch.Clear();
    const std::size_t bytes = batch.ApproxBytes();
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() >= max_free_) {
      return;  // `batch` dies here, freeing its storage
    }
    free_bytes_ += bytes;
    if (free_bytes_ > high_water_bytes_) {
      high_water_bytes_ = free_bytes_;
    }
    free_.push_back(std::move(batch));
  }

  /// Drops every pooled batch (memory-governor soft-pressure trim).
  /// Returns the bytes released.
  std::size_t Trim() {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t freed = free_bytes_;
    free_.clear();
    free_.shrink_to_fit();
    free_bytes_ = 0;
    return freed;
  }

  /// Bytes currently parked on the free list.
  std::size_t free_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_bytes_;
  }

  /// Highest free-list byte count ever observed — the recycled storage
  /// footprint's plateau telemetry.
  std::size_t high_water_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_bytes_;
  }

  /// Total Acquire() calls / the subset served from the free list.
  std::uint64_t acquires() const {
    std::lock_guard<std::mutex> lock(mu_);
    return acquires_;
  }
  std::uint64_t reuses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reuses_;
  }

 private:
  const std::size_t max_free_;
  mutable std::mutex mu_;
  std::vector<ops::TupleBatch> free_;
  std::size_t free_bytes_ = 0;
  std::size_t high_water_bytes_ = 0;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace runtime
}  // namespace craqr
