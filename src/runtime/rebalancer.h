#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

/// \file rebalancer.h
/// \brief Load-aware cell placement: the planning half of the sharded
/// runtime's epoch-barrier rebalancing.
///
/// Static cell-hash partitioning collapses under skew — a city-scale
/// workload concentrates most tuples in a few hot cells and one shard tows
/// the fleet. The Rebalancer turns the telemetry the runtime already
/// collects (per-cell routed-tuple deltas from the
/// `craqr.fabric.cell_routed.h<cells>` counter bank, per-shard busy_ns
/// deltas) into a greedy hottest-cell-to-coldest-shard migration plan.
/// It is a pure planning component: no locks, no engine types, fully
/// deterministic given its inputs and its own cooldown state — which is
/// what makes it unit-testable in isolation and the execution half
/// (ShardedFabricator::Rebalance) a straight-line interpreter of the plan.
///
/// Two hysteresis mechanisms keep the plan from thrashing:
///  - an **imbalance trigger**: no plan at all until the hottest shard
///    carries `imbalance_trigger` times the mean load;
///  - a **per-cell cooldown**: a migrated cell is pinned to its new shard
///    for `cooldown_events` subsequent planning rounds, so one cell cannot
///    ping-pong between two shards on consecutive barriers.

namespace craqr {
namespace runtime {

/// \brief Rebalancer tuning knobs (EngineConfig::rebalance).
struct RebalanceConfig {
  /// The hottest shard must carry at least this multiple of the mean
  /// shard load (routed-tuple or busy-ns delta since the last round)
  /// before any migration is planned. Values near 1.0 chase noise; the
  /// default tolerates 25% imbalance.
  double imbalance_trigger = 1.25;
  /// Upper bound on cells migrated per rebalance event; bounds the
  /// barrier's pause time.
  std::size_t max_moves_per_event = 8;
  /// Cells with fewer routed tuples than this since the last round are
  /// never worth their migration cost.
  std::uint64_t min_cell_tuples = 64;
  /// Planning rounds a just-migrated cell stays pinned to its new shard.
  std::uint64_t cooldown_events = 2;
};

/// \brief One planned migration: move `flat_cell` from shard `from` to
/// shard `to`; `weight` is the routed-tuple delta that motivated it.
struct CellMove {
  std::uint32_t flat_cell = 0;
  std::size_t from = 0;
  std::size_t to = 0;
  std::uint64_t weight = 0;
};

/// \brief A planning round's output.
struct RebalancePlan {
  /// Migrations in execution order (heaviest first).
  std::vector<CellMove> moves;
  /// Diagnostics: the per-shard routed-tuple deltas the plan saw.
  std::vector<std::uint64_t> shard_load;
};

/// \brief Greedy hottest-cell-to-coldest-shard planner with hysteresis.
class Rebalancer {
 public:
  Rebalancer(const RebalanceConfig& config, std::size_t num_shards);

  /// \brief Plans one rebalancing round.
  ///
  /// `cell_load[c]` is flat cell c's routed-tuple delta since the last
  /// round, `cell_owner[c]` its current owning shard (entries >= the
  /// shard count — e.g. a routing table's sentinel row — are ignored),
  /// `shard_busy_ns[i]` shard i's busy-time delta. The trigger fires when
  /// either signal is imbalanced: routed tuples catch hot cells directly,
  /// busy time catches cells whose chains are expensive per tuple. Moves
  /// are then chosen greedily — the heaviest movable cell of the hottest
  /// shard goes to the coldest shard, loads are adjusted, repeat — where
  /// "movable" means not cooling down, at least `min_cell_tuples` heavy,
  /// and lighter than the hot/cold gap (so every move strictly narrows
  /// it). Records cooldowns for the cells it moves.
  RebalancePlan Plan(const std::vector<std::uint64_t>& cell_load,
                     const std::vector<std::uint32_t>& cell_owner,
                     const std::vector<std::uint64_t>& shard_busy_ns);

  const RebalanceConfig& config() const { return config_; }

  /// Cells currently pinned by a cooldown (diagnostics, tests).
  std::size_t cooling_cells() const { return cooldown_.size(); }

 private:
  RebalanceConfig config_;
  std::size_t num_shards_;
  /// flat cell -> remaining planning rounds it stays pinned.
  std::unordered_map<std::uint32_t, std::uint64_t> cooldown_;
};

}  // namespace runtime
}  // namespace craqr
