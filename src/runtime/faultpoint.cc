#include "runtime/faultpoint.h"

#include <algorithm>

namespace craqr {
namespace runtime {

namespace {

/// SplitMix64 — the same mixing finalizer the fabricator's operator
/// seeding uses; a (seed, site-hash, hit-number) chain gives every hit an
/// independent, reproducible uniform draw.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// FNV-1a over the site name (stable across runs and platforms).
std::uint64_t HashSite(const char* site) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char* p = site; *p != '\0'; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

FaultRegistry& FaultRegistry::Global() {
  static FaultRegistry* instance = new FaultRegistry();
  return *instance;
}

void FaultRegistry::Seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

void FaultRegistry::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  std::sort(spec.at_hits.begin(), spec.at_hits.end());
  SiteState& state = sites_[site];
  if (!state.armed) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  state.spec = std::move(spec);
  state.hit_count = 0;
  state.fire_count = 0;
  state.armed = true;
}

void FaultRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end() && it->second.armed) {
    it->second.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultRegistry::Fire(const char* site, std::uint64_t* param_out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) {
    return false;
  }
  SiteState& state = it->second;
  const std::uint64_t hit = ++state.hit_count;  // 1-based
  if (state.spec.max_fires != 0 &&
      state.fire_count >= state.spec.max_fires) {
    return false;
  }
  bool fires = false;
  if (!state.spec.at_hits.empty()) {
    fires = std::binary_search(state.spec.at_hits.begin(),
                               state.spec.at_hits.end(), hit);
  } else if (state.spec.probability > 0.0) {
    // Counter-based draw: uniform in [0, 1) from (seed, site, hit).
    const std::uint64_t bits =
        SplitMix64(SplitMix64(seed_ ^ HashSite(site)) ^ hit);
    const double u =
        static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
    fires = u < state.spec.probability;
  }
  if (fires) {
    ++state.fire_count;
    if (param_out != nullptr) {
      *param_out = state.spec.param;
    }
  }
  return fires;
}

std::uint64_t FaultRegistry::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hit_count;
}

std::uint64_t FaultRegistry::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fire_count;
}

}  // namespace runtime
}  // namespace craqr
