#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "geometry/rect.h"

/// \file query.h
/// \brief The acquisitional query model (paper Section III).
///
/// "The most simplest queries for acquiring MCDS will have to specify the
/// following parameters: 1) The attribute A<j> they want to acquire, 2) The
/// region from which they want to acquire the given attribute, 3) the rate
/// at which they want to acquire the attribute."

namespace craqr {
namespace query {

/// Identifier assigned to a registered (inserted) query.
using QueryId = std::uint64_t;

/// \brief One acquisitional query Q<j>.
///
/// Example (the paper's Q<1>): acquire `rain` from R' at 10 /km2/min.
struct AcquisitionQuery {
  /// The attribute name (resolved against the attribute registry at
  /// submission).
  std::string attribute;
  /// The query region R' (must intersect the system region R).
  geom::Rect region;
  /// Requested acquisition rate in tuples per km^2 per minute (canonical
  /// units; see units.h for conversions).
  double rate = 0.0;

  /// Renders the query in the declarative syntax accepted by ParseQuery.
  std::string ToString() const;

  /// Validates attribute non-empty, region non-degenerate, rate > 0.
  Status Validate() const;
};

/// \brief Parses the declarative acquisition syntax:
///
/// ```
/// ACQUIRE <attribute>
///   FROM REGION(<x_min>, <y_min>, <x_max>, <y_max>)
///   RATE <value> PER <area-unit> PER <time-unit>
/// ```
///
/// Keywords are case-insensitive; whitespace is free-form. Example:
/// `ACQUIRE rain FROM REGION(0, 0, 2, 3) RATE 10 PER KM2 PER MIN`.
/// The returned query's rate is converted to tuples/km^2/min.
Result<AcquisitionQuery> ParseQuery(const std::string& text);

}  // namespace query
}  // namespace craqr
