#include "query/units.h"

#include <algorithm>
#include <cctype>

namespace craqr {
namespace query {

namespace {
std::string ToUpper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}
}  // namespace

Result<AreaUnit> ParseAreaUnit(const std::string& token) {
  const std::string t = ToUpper(token);
  if (t == "KM2" || t == "KM^2" || t == "SQKM") {
    return AreaUnit::kSquareKilometre;
  }
  if (t == "M2" || t == "M^2" || t == "SQM") {
    return AreaUnit::kSquareMetre;
  }
  if (t == "HA" || t == "HECTARE") {
    return AreaUnit::kHectare;
  }
  return Status::InvalidArgument("unknown area unit '" + token + "'");
}

Result<TimeUnit> ParseTimeUnit(const std::string& token) {
  const std::string t = ToUpper(token);
  if (t == "SEC" || t == "SECOND" || t == "S") {
    return TimeUnit::kSecond;
  }
  if (t == "MIN" || t == "MINUTE" || t == "M") {
    return TimeUnit::kMinute;
  }
  if (t == "HR" || t == "HOUR" || t == "H") {
    return TimeUnit::kHour;
  }
  if (t == "DAY" || t == "D") {
    return TimeUnit::kDay;
  }
  return Status::InvalidArgument("unknown time unit '" + token + "'");
}

double AreaUnitInKm2(AreaUnit unit) {
  switch (unit) {
    case AreaUnit::kSquareKilometre:
      return 1.0;
    case AreaUnit::kSquareMetre:
      return 1e-6;
    case AreaUnit::kHectare:
      return 0.01;
  }
  return 1.0;
}

double TimeUnitInMinutes(TimeUnit unit) {
  switch (unit) {
    case TimeUnit::kSecond:
      return 1.0 / 60.0;
    case TimeUnit::kMinute:
      return 1.0;
    case TimeUnit::kHour:
      return 60.0;
    case TimeUnit::kDay:
      return 1440.0;
  }
  return 1.0;
}

double ToPerKm2PerMinute(double value, AreaUnit area, TimeUnit time) {
  // value tuples per (area in km2) per (time in minutes).
  return value / AreaUnitInKm2(area) / TimeUnitInMinutes(time);
}

std::string AreaUnitName(AreaUnit unit) {
  switch (unit) {
    case AreaUnit::kSquareKilometre:
      return "KM2";
    case AreaUnit::kSquareMetre:
      return "M2";
    case AreaUnit::kHectare:
      return "HA";
  }
  return "?";
}

std::string TimeUnitName(TimeUnit unit) {
  switch (unit) {
    case TimeUnit::kSecond:
      return "SEC";
    case TimeUnit::kMinute:
      return "MIN";
    case TimeUnit::kHour:
      return "HR";
    case TimeUnit::kDay:
      return "DAY";
  }
  return "?";
}

}  // namespace query
}  // namespace craqr
