#pragma once

#include <string>

#include "common/result.h"

/// \file units.h
/// \brief Unit handling for acquisition rates.
///
/// The paper expresses rates like "10 /km^2/min". Internally CrAQR uses
/// tuples per km^2 per minute everywhere; this header converts user-facing
/// area and time units to that canonical form.

namespace craqr {
namespace query {

/// \brief Supported area units.
enum class AreaUnit {
  kSquareKilometre,  ///< km2
  kSquareMetre,      ///< m2
  kHectare,          ///< ha
};

/// \brief Supported time units.
enum class TimeUnit {
  kSecond,
  kMinute,
  kHour,
  kDay,
};

/// Parses an area-unit token ("KM2", "M2", "HA", case-insensitive).
Result<AreaUnit> ParseAreaUnit(const std::string& token);

/// Parses a time-unit token ("SEC", "SECOND", "MIN", "MINUTE", "HR",
/// "HOUR", "DAY"; case-insensitive).
Result<TimeUnit> ParseTimeUnit(const std::string& token);

/// km^2 per one `unit`.
double AreaUnitInKm2(AreaUnit unit);

/// Minutes per one `unit`.
double TimeUnitInMinutes(TimeUnit unit);

/// Converts `value` tuples per `area` per `time` into tuples per km^2 per
/// minute.
double ToPerKm2PerMinute(double value, AreaUnit area, TimeUnit time);

/// Canonical spelling of a unit.
std::string AreaUnitName(AreaUnit unit);
std::string TimeUnitName(TimeUnit unit);

}  // namespace query
}  // namespace craqr
