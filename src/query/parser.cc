#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/macros.h"
#include "query/query.h"
#include "query/units.h"

namespace craqr {
namespace query {

std::string AcquisitionQuery::ToString() const {
  std::ostringstream os;
  os << "ACQUIRE " << attribute << " FROM REGION(" << region.x_min() << ", "
     << region.y_min() << ", " << region.x_max() << ", " << region.y_max()
     << ") RATE " << rate << " PER KM2 PER MIN";
  return os.str();
}

Status AcquisitionQuery::Validate() const {
  if (attribute.empty()) {
    return Status::InvalidArgument("query attribute must not be empty");
  }
  if (region.IsEmpty()) {
    return Status::InvalidArgument("query region must have positive area");
  }
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    return Status::InvalidArgument("query rate must be > 0");
  }
  return Status::OK();
}

namespace {

/// \brief Token categories of the query language.
enum class TokenKind { kWord, kNumber, kLParen, kRParen, kComma, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  double number = 0.0;
};

/// Splits the input into words, numbers and punctuation.
Result<std::vector<Token>> Tokenize(const std::string& text) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '(') {
      tokens.push_back({TokenKind::kLParen, "(", 0.0});
      ++i;
      continue;
    }
    if (c == ')') {
      tokens.push_back({TokenKind::kRParen, ")", 0.0});
      ++i;
      continue;
    }
    if (c == ',') {
      tokens.push_back({TokenKind::kComma, ",", 0.0});
      ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.') {
      std::size_t end = i;
      std::size_t parsed = 0;
      double value = 0.0;
      try {
        value = std::stod(text.substr(i), &parsed);
      } catch (...) {
        return Status::InvalidArgument("malformed number at position " +
                                       std::to_string(i) + " in query");
      }
      end = i + parsed;
      tokens.push_back({TokenKind::kNumber, text.substr(i, end - i), value});
      i = end;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = i;
      while (end < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[end])) ||
              text[end] == '_' || text[end] == '^')) {
        ++end;
      }
      tokens.push_back({TokenKind::kWord, text.substr(i, end - i), 0.0});
      i = end;
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in query");
  }
  tokens.push_back({TokenKind::kEnd, "", 0.0});
  return tokens;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char ch) { return std::toupper(ch); });
  return out;
}

/// Recursive-descent cursor over the token stream.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }

  Token Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  /// Consumes a keyword (case-insensitive) or errors.
  Status ExpectKeyword(const std::string& keyword) {
    const Token token = Next();
    if (token.kind != TokenKind::kWord || ToUpper(token.text) != keyword) {
      return Status::InvalidArgument("expected keyword '" + keyword +
                                     "', got '" + token.text + "'");
    }
    return Status::OK();
  }

  /// Consumes a punctuation token or errors.
  Status ExpectPunct(TokenKind kind, const char* what) {
    const Token token = Next();
    if (token.kind != kind) {
      return Status::InvalidArgument(std::string("expected '") + what +
                                     "', got '" + token.text + "'");
    }
    return Status::OK();
  }

  /// Consumes a number or errors.
  Result<double> ExpectNumber(const char* what) {
    const Token token = Next();
    if (token.kind != TokenKind::kNumber) {
      return Status::InvalidArgument(std::string("expected number for ") +
                                     what + ", got '" + token.text + "'");
    }
    return token.number;
  }

  /// Consumes a word or errors.
  Result<std::string> ExpectWord(const char* what) {
    const Token token = Next();
    if (token.kind != TokenKind::kWord) {
      return Status::InvalidArgument(std::string("expected ") + what +
                                     ", got '" + token.text + "'");
    }
    return token.text;
  }

 private:
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<AcquisitionQuery> ParseQuery(const std::string& text) {
  CRAQR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Cursor cursor(std::move(tokens));

  AcquisitionQuery parsed;
  CRAQR_RETURN_NOT_OK(cursor.ExpectKeyword("ACQUIRE"));
  CRAQR_ASSIGN_OR_RETURN(parsed.attribute, cursor.ExpectWord("attribute name"));
  CRAQR_RETURN_NOT_OK(cursor.ExpectKeyword("FROM"));
  CRAQR_RETURN_NOT_OK(cursor.ExpectKeyword("REGION"));
  CRAQR_RETURN_NOT_OK(cursor.ExpectPunct(TokenKind::kLParen, "("));
  CRAQR_ASSIGN_OR_RETURN(const double x_min, cursor.ExpectNumber("x_min"));
  CRAQR_RETURN_NOT_OK(cursor.ExpectPunct(TokenKind::kComma, ","));
  CRAQR_ASSIGN_OR_RETURN(const double y_min, cursor.ExpectNumber("y_min"));
  CRAQR_RETURN_NOT_OK(cursor.ExpectPunct(TokenKind::kComma, ","));
  CRAQR_ASSIGN_OR_RETURN(const double x_max, cursor.ExpectNumber("x_max"));
  CRAQR_RETURN_NOT_OK(cursor.ExpectPunct(TokenKind::kComma, ","));
  CRAQR_ASSIGN_OR_RETURN(const double y_max, cursor.ExpectNumber("y_max"));
  CRAQR_RETURN_NOT_OK(cursor.ExpectPunct(TokenKind::kRParen, ")"));
  CRAQR_ASSIGN_OR_RETURN(parsed.region,
                         geom::Rect::Make(x_min, y_min, x_max, y_max));
  CRAQR_RETURN_NOT_OK(cursor.ExpectKeyword("RATE"));
  CRAQR_ASSIGN_OR_RETURN(const double value, cursor.ExpectNumber("rate"));
  CRAQR_RETURN_NOT_OK(cursor.ExpectKeyword("PER"));
  CRAQR_ASSIGN_OR_RETURN(const std::string area_word,
                         cursor.ExpectWord("area unit"));
  CRAQR_ASSIGN_OR_RETURN(const AreaUnit area_unit, ParseAreaUnit(area_word));
  CRAQR_RETURN_NOT_OK(cursor.ExpectKeyword("PER"));
  CRAQR_ASSIGN_OR_RETURN(const std::string time_word,
                         cursor.ExpectWord("time unit"));
  CRAQR_ASSIGN_OR_RETURN(const TimeUnit time_unit, ParseTimeUnit(time_word));
  if (cursor.Peek().kind != TokenKind::kEnd) {
    return Status::InvalidArgument("trailing tokens after query: '" +
                                   cursor.Peek().text + "'");
  }
  parsed.rate = ToPerKm2PerMinute(value, area_unit, time_unit);
  CRAQR_RETURN_NOT_OK(parsed.Validate());
  return parsed;
}

}  // namespace query
}  // namespace craqr
