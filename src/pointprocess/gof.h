#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geometry/point.h"
#include "pointprocess/window.h"

/// \file gof.h
/// \brief Goodness-of-fit and homogeneity diagnostics for MDPPs.
///
/// The Flatten operator's claim ("produces an approximately homogeneous
/// point process", paper Section IV-B-1) is verified with these tests: a
/// chi-square test of spatial cell counts against the
/// complete-spatial-randomness null, the coefficient of variation of cell
/// counts, and a Kolmogorov-Smirnov test of temporal uniformity.

namespace craqr {
namespace pp {

/// \brief Outcome of the spatial homogeneity test.
struct HomogeneityReport {
  /// Pearson chi-square statistic of the cell counts against the uniform
  /// expectation.
  double chi_square = 0.0;
  /// Degrees of freedom (#cells - 1).
  double dof = 0.0;
  /// Chi-square p-value: small values reject homogeneity.
  double p_value = 1.0;
  /// Coefficient of variation of the cell counts (stddev / mean); a
  /// homogeneous Poisson pattern has CV ~ 1/sqrt(mean count).
  double count_cv = 0.0;
  /// Points per unit volume over the window.
  double empirical_rate = 0.0;
  /// Number of points inside the window.
  std::uint64_t n = 0;
  /// Mean expected count per cell (test power is low when this is < ~5).
  double expected_per_cell = 0.0;
};

/// \brief Chi-square test of spatial homogeneity: partitions the window's
/// spatial extent into `bins_x` x `bins_y` equal cells and compares counts
/// to the uniform expectation.
///
/// Points outside the window are ignored. Requires a valid window and
/// bins >= 2 in total.
Result<HomogeneityReport> TestSpatialHomogeneity(
    const std::vector<geom::SpaceTimePoint>& points,
    const SpaceTimeWindow& window, std::size_t bins_x, std::size_t bins_y);

/// \brief Outcome of the temporal uniformity (KS) test.
struct KsReport {
  /// KS statistic D.
  double statistic = 0.0;
  /// Asymptotic p-value; small values reject temporal homogeneity.
  double p_value = 1.0;
  /// Number of points tested.
  std::uint64_t n = 0;
};

/// \brief Kolmogorov-Smirnov test that arrival times of points inside the
/// window are uniform on [t_begin, t_end) — the temporal signature of a
/// homogeneous MDPP.
Result<KsReport> TestTemporalUniformity(
    const std::vector<geom::SpaceTimePoint>& points,
    const SpaceTimeWindow& window);

/// \brief Points-per-volume estimate of the (assumed constant) rate:
/// `#points inside window / window volume`.
double EmpiricalRate(const std::vector<geom::SpaceTimePoint>& points,
                     const SpaceTimeWindow& window);

}  // namespace pp
}  // namespace craqr
