#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/span.h"
#include "geometry/point.h"
#include "pointprocess/intensity.h"
#include "pointprocess/window.h"

/// \file estimate.h
/// \brief Hand-coded intensity estimation for inhomogeneous MDPPs.
///
/// The paper (Section III-A) relies on two estimation routes:
///  1. batch maximum-likelihood estimation of the linear conditional-rate
///     model of Eq. (1) ("we can estimate the rate ... using techniques like
///     maximum-likelihood estimation [12]"), and
///  2. "online parameter estimation algorithms like stochastic gradient
///     descent ... [13]" for the sliding-window Flatten mode.
/// Both are implemented here from scratch: the exact inhomogeneous-Poisson
/// log-likelihood has a closed-form integral term for linear intensities,
/// so the batch MLE is a damped-Newton ascent on the exact objective, and
/// the online estimator performs per-arrival stochastic gradient steps with
/// a Bottou-style decaying step size.

namespace craqr {
namespace pp {

/// \brief Options for the batch linear MLE.
struct LinearMleOptions {
  /// Maximum Newton iterations.
  int max_iterations = 200;
  /// Convergence threshold on the gradient max-norm (in normalized
  /// coordinates).
  double tolerance = 1e-9;
};

/// \brief Result of a batch linear MLE fit.
struct LinearFit {
  /// Parameters of Eq. (1) in raw coordinates:
  /// lambda(t,x,y) = theta[0] + theta[1]*t + theta[2]*x + theta[3]*y.
  LinearIntensity::Theta theta{};
  /// Maximised log-likelihood.
  double log_likelihood = 0.0;
  /// Newton iterations consumed.
  int iterations = 0;
  /// True when the gradient tolerance was met.
  bool converged = false;

  /// Builds a LinearIntensity from the fitted parameters.
  Result<IntensityPtr> ToIntensity(double min_rate = 1e-9) const {
    return LinearIntensity::Make(theta, min_rate);
  }
};

/// \brief Fits the linear conditional-rate model by exact maximum
/// likelihood over the window.
///
/// The log-likelihood of an inhomogeneous Poisson process with intensity
/// `lambda` observed on window V is `sum_i log lambda(p_i) - integral_V
/// lambda`; for a linear lambda the integral equals
/// `Volume(V) * lambda(centroid(V))`. The optimisation runs in centred,
/// half-extent-scaled coordinates for conditioning and uses damped Newton
/// with backtracking (the Hessian is negative definite wherever the
/// intensity is positive at all points).
///
/// Requires a valid window and at least one point inside it. The span form
/// reads the caller's point column in place (zero-copy from a columnar
/// TupleBatch); the vector overload forwards.
Result<LinearFit> FitLinearMle(Span<const geom::SpaceTimePoint> points,
                               const SpaceTimeWindow& window,
                               const LinearMleOptions& options = {});
Result<LinearFit> FitLinearMle(const std::vector<geom::SpaceTimePoint>& points,
                               const SpaceTimeWindow& window,
                               const LinearMleOptions& options = {});

/// \brief Online (streaming) estimator of the linear conditional-rate model
/// via per-arrival stochastic gradient ascent.
///
/// Arrivals must be fed in non-decreasing time order. Each `Update`
/// performs one ascent step on the instantaneous log-likelihood
/// contribution `log lambda(p) - dV * mean-spatial-lambda`, where `dV` is
/// the space-time volume elapsed since the previous arrival. The step size
/// decays as `eta_k = eta0 / (1 + eta0 * decay * k)` (Bottou 2010).
/// \brief Tuning knobs for SgdEstimator.
struct SgdOptions {
  /// Initial step size.
  double eta0 = 0.5;
  /// Step-size decay factor.
  double decay = 0.05;
  /// Lower clamp applied to the intensity during updates.
  double min_rate = 1e-9;
  /// When false, the time slope theta1 is pinned to zero and the level
  /// theta0 adapts instead. Use this on unbounded streams: a global linear
  /// time trend is not identifiable online (the normalised time coordinate
  /// grows without bound), whereas a drifting level is exactly what SGD
  /// tracks well. The sliding-window Flatten mode runs with this off.
  bool use_time_feature = true;
};

class SgdEstimator {
 public:
  /// Backwards-compatible alias; options live at namespace scope so they
  /// can serve as default arguments.
  using Options = SgdOptions;

  /// Creates an estimator over the given spatial domain starting at
  /// `domain.t_begin`. Requires a valid window.
  static Result<SgdEstimator> Make(const SpaceTimeWindow& domain,
                                   const SgdOptions& options = SgdOptions());

  /// Feeds one arrival (time must be >= the previous arrival's time; out of
  /// order updates are clamped to the last seen time).
  void Update(const geom::SpaceTimePoint& p);

  /// Current parameter estimate in raw coordinates.
  LinearIntensity::Theta theta() const;

  /// Current intensity estimate at a point (clamped at min_rate).
  double RateAt(const geom::SpaceTimePoint& p) const;

  /// Number of updates applied.
  std::uint64_t num_updates() const { return updates_; }

  /// Builds a LinearIntensity snapshot of the current estimate.
  Result<IntensityPtr> ToIntensity(double min_rate = 1e-9) const {
    return LinearIntensity::Make(theta(), min_rate);
  }

  /// The domain the estimator was constructed over (checkpoint/restore:
  /// a restored estimator is rebuilt via Make over the same domain, which
  /// regenerates the derived normalisation scales, then State is applied).
  const SpaceTimeWindow& domain() const { return domain_; }

  /// \brief The estimator's mutable state: normalized-coordinate
  /// parameters, the last arrival time, and the update count. The domain,
  /// options, and derived scales are construction inputs and are restored
  /// by re-running Make.
  struct State {
    std::array<double, 4> a{};
    double last_t = 0.0;
    std::uint64_t updates = 0;
  };

  State Save() const { return {a_, last_t_, updates_}; }

  void Restore(const State& st) {
    a_ = st.a;
    last_t_ = st.last_t;
    updates_ = st.updates;
  }

 private:
  SgdEstimator(const SpaceTimeWindow& domain, const Options& options);

  // Normalized-coordinate helpers.
  std::array<double, 4> Features(const geom::SpaceTimePoint& p) const;

  SpaceTimeWindow domain_;
  Options options_;
  // Centre and half-extent scales for coordinate normalisation.
  double tc_, xc_, yc_;
  double st_, sx_, sy_;
  // Parameters in normalized coordinates.
  std::array<double, 4> a_{};
  double last_t_ = 0.0;
  std::uint64_t updates_ = 0;
};

/// \brief Nonparametric histogram estimator: a rows x cols piecewise-
/// constant spatial intensity with rate = count / (cell area * duration).
///
/// Requires a valid window and rows, cols >= 1. Points outside the window
/// are ignored.
Result<IntensityPtr> FitPiecewiseConstant(
    const std::vector<geom::SpaceTimePoint>& points,
    const SpaceTimeWindow& window, std::size_t rows, std::size_t cols);

}  // namespace pp
}  // namespace craqr
