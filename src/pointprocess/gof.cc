#include "pointprocess/gof.h"

#include <algorithm>
#include <cmath>

#include "common/math.h"
#include "common/stats.h"

namespace craqr {
namespace pp {

Result<HomogeneityReport> TestSpatialHomogeneity(
    const std::vector<geom::SpaceTimePoint>& points,
    const SpaceTimeWindow& window, std::size_t bins_x, std::size_t bins_y) {
  if (!window.IsValid()) {
    return Status::InvalidArgument("window must have positive volume");
  }
  if (bins_x * bins_y < 2) {
    return Status::InvalidArgument(
        "homogeneity test requires at least two cells");
  }
  const double cell_w = window.space.Width() / static_cast<double>(bins_x);
  const double cell_h = window.space.Height() / static_cast<double>(bins_y);
  std::vector<std::uint64_t> counts(bins_x * bins_y, 0);
  std::uint64_t n = 0;
  for (const auto& p : points) {
    if (!window.Contains(p)) {
      continue;
    }
    auto bx = static_cast<std::size_t>((p.x - window.space.x_min()) / cell_w);
    auto by = static_cast<std::size_t>((p.y - window.space.y_min()) / cell_h);
    bx = std::min(bx, bins_x - 1);
    by = std::min(by, bins_y - 1);
    ++counts[by * bins_x + bx];
    ++n;
  }

  HomogeneityReport report;
  report.n = n;
  report.dof = static_cast<double>(counts.size()) - 1.0;
  report.empirical_rate = static_cast<double>(n) / window.Volume();
  report.expected_per_cell =
      static_cast<double>(n) / static_cast<double>(counts.size());
  if (n == 0) {
    report.p_value = 1.0;
    return report;
  }
  RunningStats stats;
  double chi_square = 0.0;
  const double expected = report.expected_per_cell;
  for (std::uint64_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    chi_square += diff * diff / expected;
    stats.Add(static_cast<double>(c));
  }
  report.chi_square = chi_square;
  report.p_value = ChiSquareSurvival(chi_square, report.dof);
  report.count_cv = stats.CoefficientOfVariation();
  return report;
}

Result<KsReport> TestTemporalUniformity(
    const std::vector<geom::SpaceTimePoint>& points,
    const SpaceTimeWindow& window) {
  if (!window.IsValid()) {
    return Status::InvalidArgument("window must have positive volume");
  }
  std::vector<double> u;
  u.reserve(points.size());
  for (const auto& p : points) {
    if (!window.Contains(p)) {
      continue;
    }
    u.push_back((p.t - window.t_begin) / window.Duration());
  }
  std::sort(u.begin(), u.end());
  KsReport report;
  report.n = u.size();
  report.statistic = KsTestUniform(u, &report.p_value);
  return report;
}

double EmpiricalRate(const std::vector<geom::SpaceTimePoint>& points,
                     const SpaceTimeWindow& window) {
  if (!window.IsValid()) {
    return 0.0;
  }
  std::uint64_t n = 0;
  for (const auto& p : points) {
    if (window.Contains(p)) {
      ++n;
    }
  }
  return static_cast<double>(n) / window.Volume();
}

}  // namespace pp
}  // namespace craqr
