#pragma once

#include <string>

#include "geometry/point.h"
#include "geometry/rect.h"

/// \file window.h
/// \brief The 3-D space-time box over which MDPPs are simulated, estimated
/// and flattened.

namespace craqr {
namespace pp {

/// \brief A space-time box: [t_begin, t_end) x spatial rectangle.
///
/// Volumes are measured in km^2 * min, so a rate in tuples/km^2/min times a
/// window volume gives an expected tuple count.
struct SpaceTimeWindow {
  double t_begin = 0.0;
  double t_end = 0.0;
  geom::Rect space;

  /// Duration in minutes.
  double Duration() const { return t_end - t_begin; }

  /// 3-D volume = duration * area (km^2 * min).
  double Volume() const { return Duration() * space.Area(); }

  /// True when the point lies inside the half-open box.
  bool Contains(const geom::SpaceTimePoint& p) const {
    return p.t >= t_begin && p.t < t_end && space.Contains(p.x, p.y);
  }

  /// The box centre (mid-time, spatial centre).
  geom::SpaceTimePoint Centroid() const {
    const geom::SpacePoint c = space.Center();
    return geom::SpaceTimePoint{(t_begin + t_end) / 2.0, c.x, c.y};
  }

  /// True when duration and area are both positive.
  bool IsValid() const { return t_end > t_begin && !space.IsEmpty(); }

  /// Debug representation.
  std::string ToString() const;
};

}  // namespace pp
}  // namespace craqr
