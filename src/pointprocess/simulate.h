#pragma once

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geometry/point.h"
#include "pointprocess/intensity.h"
#include "pointprocess/window.h"

/// \file simulate.h
/// \brief Exact samplers for homogeneous and inhomogeneous MDPPs.
///
/// These generate ground-truth point patterns for tests, benchmarks and the
/// crowd simulator: a homogeneous sampler (Poisson count + uniform
/// placement) and a Lewis-Shedler thinning sampler for arbitrary bounded
/// intensities.

namespace craqr {
namespace pp {

/// \brief Options shared by the samplers.
struct SimulateOptions {
  /// Sort the returned points by arrival time (stream order).
  bool sort_by_time = true;
};

/// \brief Samples a homogeneous MDPP P(rate, window.space) restricted to
/// the window: draws N ~ Poisson(rate * Volume) and places points uniformly.
///
/// Requires rate >= 0 and a valid window.
Result<std::vector<geom::SpaceTimePoint>> SimulateHomogeneous(
    Rng* rng, double rate, const SpaceTimeWindow& window,
    const SimulateOptions& options = {});

/// \brief Samples an inhomogeneous MDPP with the given intensity via
/// Lewis-Shedler thinning: candidates from a homogeneous process at the
/// dominating rate `model.UpperBound(window)` are retained with probability
/// `Rate(p) / bound`.
///
/// Requires a valid window; returns an error if the model's upper bound is
/// not finite.
Result<std::vector<geom::SpaceTimePoint>> SimulateInhomogeneous(
    Rng* rng, const IntensityModel& model, const SpaceTimeWindow& window,
    const SimulateOptions& options = {});

}  // namespace pp
}  // namespace craqr
