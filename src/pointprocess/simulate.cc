#include "pointprocess/simulate.h"

#include <algorithm>
#include <cmath>

namespace craqr {
namespace pp {

namespace {

void SortByTime(std::vector<geom::SpaceTimePoint>* points) {
  std::sort(points->begin(), points->end(),
            [](const geom::SpaceTimePoint& a, const geom::SpaceTimePoint& b) {
              return a.t < b.t;
            });
}

geom::SpaceTimePoint UniformPoint(Rng* rng, const SpaceTimeWindow& window) {
  return geom::SpaceTimePoint{
      rng->Uniform(window.t_begin, window.t_end),
      rng->Uniform(window.space.x_min(), window.space.x_max()),
      rng->Uniform(window.space.y_min(), window.space.y_max())};
}

}  // namespace

Result<std::vector<geom::SpaceTimePoint>> SimulateHomogeneous(
    Rng* rng, double rate, const SpaceTimeWindow& window,
    const SimulateOptions& options) {
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  if (!(rate >= 0.0) || !std::isfinite(rate)) {
    return Status::InvalidArgument("rate must be finite and >= 0");
  }
  if (!window.IsValid()) {
    return Status::InvalidArgument("window must have positive volume: " +
                                   window.ToString());
  }
  const std::uint64_t n = rng->Poisson(rate * window.Volume());
  std::vector<geom::SpaceTimePoint> points;
  points.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    points.push_back(UniformPoint(rng, window));
  }
  if (options.sort_by_time) {
    SortByTime(&points);
  }
  return points;
}

Result<std::vector<geom::SpaceTimePoint>> SimulateInhomogeneous(
    Rng* rng, const IntensityModel& model, const SpaceTimeWindow& window,
    const SimulateOptions& options) {
  if (rng == nullptr) {
    return Status::InvalidArgument("rng must not be null");
  }
  if (!window.IsValid()) {
    return Status::InvalidArgument("window must have positive volume: " +
                                   window.ToString());
  }
  const double bound = model.UpperBound(window);
  if (!std::isfinite(bound) || bound < 0.0) {
    return Status::InvalidArgument(
        "intensity upper bound must be finite and >= 0, got " +
        std::to_string(bound));
  }
  std::vector<geom::SpaceTimePoint> points;
  if (bound == 0.0) {
    return points;
  }
  const std::uint64_t candidates = rng->Poisson(bound * window.Volume());
  points.reserve(candidates / 2);
  for (std::uint64_t i = 0; i < candidates; ++i) {
    const geom::SpaceTimePoint p = UniformPoint(rng, window);
    const double acceptance = model.Rate(p) / bound;
    if (rng->Bernoulli(acceptance)) {
      points.push_back(p);
    }
  }
  if (options.sort_by_time) {
    SortByTime(&points);
  }
  return points;
}

}  // namespace pp
}  // namespace craqr
