#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/point.h"
#include "pointprocess/window.h"

/// \file intensity.h
/// \brief Conditional-rate (intensity) models for multi-dimensional point
/// processes (paper Section III-A).
///
/// An MDPP over (t, x, y) is fully described by its intensity
/// lambda(t, x, y) >= 0.  The paper's Eq. (1) parameterises it linearly:
/// `lambda(t,x,y; theta) = theta0 + theta1*t + theta2*x + theta3*y`.
/// This header provides that model plus the additional families used by the
/// simulator, the estimators and the Flatten operator.

namespace craqr {
namespace pp {

/// \brief Abstract conditional-rate function of an MDPP.
///
/// Implementations must be immutable after construction so they can be
/// shared across operators and threads.
class IntensityModel {
 public:
  virtual ~IntensityModel() = default;

  /// The intensity at a space-time point (tuples per km^2 per minute).
  /// Always >= 0.
  virtual double Rate(const geom::SpaceTimePoint& p) const = 0;

  /// \brief An upper bound of Rate() over the window, used as the
  /// dominating rate in Lewis-Shedler thinning. Must satisfy
  /// `UpperBound(w) >= Rate(p)` for every p in w.
  virtual double UpperBound(const SpaceTimeWindow& window) const = 0;

  /// \brief The integral of Rate() over the window (expected point count).
  ///
  /// The default implementation uses a deterministic tensor midpoint rule;
  /// subclasses with closed forms override it.
  virtual double Integral(const SpaceTimeWindow& window) const;

  /// Human-readable description of the model and its parameters.
  virtual std::string ToString() const = 0;
};

/// Shared immutable intensity handle.
using IntensityPtr = std::shared_ptr<const IntensityModel>;

/// \brief Homogeneous MDPP: constant rate over space and time
/// (paper's P(lambda, R)).
class ConstantIntensity final : public IntensityModel {
 public:
  /// Validating factory; requires rate >= 0.
  static Result<IntensityPtr> Make(double rate);

  double Rate(const geom::SpaceTimePoint&) const override { return rate_; }
  double UpperBound(const SpaceTimeWindow&) const override { return rate_; }
  double Integral(const SpaceTimeWindow& window) const override {
    return rate_ * window.Volume();
  }
  std::string ToString() const override;

 private:
  explicit ConstantIntensity(double rate) : rate_(rate) {}
  double rate_;
};

/// \brief The paper's Eq. (1): `theta0 + theta1*t + theta2*x + theta3*y`,
/// clamped below at `min_rate` to keep the intensity positive.
class LinearIntensity final : public IntensityModel {
 public:
  /// Parameter vector theta = (theta0, theta1, theta2, theta3).
  using Theta = std::array<double, 4>;

  /// Validating factory; requires min_rate >= 0.
  static Result<IntensityPtr> Make(const Theta& theta, double min_rate = 0.0);

  double Rate(const geom::SpaceTimePoint& p) const override;
  double UpperBound(const SpaceTimeWindow& window) const override;
  double Integral(const SpaceTimeWindow& window) const override;
  std::string ToString() const override;

  /// The parameter vector.
  const Theta& theta() const { return theta_; }

  /// The unclamped linear form (may be negative).
  double Linear(const geom::SpaceTimePoint& p) const {
    return theta_[0] + theta_[1] * p.t + theta_[2] * p.x + theta_[3] * p.y;
  }

 private:
  LinearIntensity(const Theta& theta, double min_rate)
      : theta_(theta), min_rate_(min_rate) {}

  Theta theta_;
  double min_rate_;
};

/// \brief Log-linear intensity `exp(theta0 + theta1*t + theta2*x +
/// theta3*y)`: always positive, with a closed-form integral. Used as the
/// estimation-friendly alternative to the clamped linear model.
class LogLinearIntensity final : public IntensityModel {
 public:
  using Theta = std::array<double, 4>;

  static Result<IntensityPtr> Make(const Theta& theta);

  double Rate(const geom::SpaceTimePoint& p) const override;
  double UpperBound(const SpaceTimeWindow& window) const override;
  double Integral(const SpaceTimeWindow& window) const override;
  std::string ToString() const override;

  const Theta& theta() const { return theta_; }

 private:
  explicit LogLinearIntensity(const Theta& theta) : theta_(theta) {}
  Theta theta_;
};

/// \brief One moving Gaussian hotspot of crowd density.
struct GaussianBump {
  /// Peak additional intensity at the bump centre.
  double amplitude = 1.0;
  /// Centre at t = 0.
  double x0 = 0.0;
  double y0 = 0.0;
  /// Spatial standard deviation (km).
  double sigma = 1.0;
  /// Centre drift velocity (km/min).
  double vx = 0.0;
  double vy = 0.0;
};

/// \brief Base rate plus a sum of (possibly moving) Gaussian hotspots —
/// the synthetic "highly skewed spatio-temporal distribution" the paper's
/// introduction motivates (mobile crowds cluster around hotspots).
class GaussianBumpIntensity final : public IntensityModel {
 public:
  /// Validating factory; requires base_rate >= 0 and every bump to have
  /// amplitude >= 0 and sigma > 0.
  static Result<IntensityPtr> Make(double base_rate,
                                   std::vector<GaussianBump> bumps);

  double Rate(const geom::SpaceTimePoint& p) const override;
  double UpperBound(const SpaceTimeWindow& window) const override;
  std::string ToString() const override;

 private:
  GaussianBumpIntensity(double base_rate, std::vector<GaussianBump> bumps)
      : base_rate_(base_rate), bumps_(std::move(bumps)) {}

  double base_rate_;
  std::vector<GaussianBump> bumps_;
};

/// \brief Piecewise-constant spatial intensity over a uniform grid, constant
/// in time. Produced by the histogram estimator and useful for replaying
/// empirical crowd densities.
class PiecewiseConstantIntensity final : public IntensityModel {
 public:
  /// Validating factory. `rates` is row-major with `cols` columns over
  /// `extent`; all rates must be >= 0. The rate outside `extent` is 0.
  static Result<IntensityPtr> Make(const geom::Rect& extent,
                                   std::size_t rows, std::size_t cols,
                                   std::vector<double> rates);

  double Rate(const geom::SpaceTimePoint& p) const override;
  double UpperBound(const SpaceTimeWindow& window) const override;
  double Integral(const SpaceTimeWindow& window) const override;
  std::string ToString() const override;

  /// The rate of cell (row, col).
  double CellRate(std::size_t row, std::size_t col) const {
    return rates_[row * cols_ + col];
  }

 private:
  PiecewiseConstantIntensity(const geom::Rect& extent, std::size_t rows,
                             std::size_t cols, std::vector<double> rates)
      : extent_(extent), rows_(rows), cols_(cols), rates_(std::move(rates)) {}

  geom::Rect extent_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> rates_;
};

/// \brief `factor * inner`: intensity scaled by a non-negative constant.
class ScaledIntensity final : public IntensityModel {
 public:
  /// Validating factory; requires inner != nullptr and factor >= 0.
  static Result<IntensityPtr> Make(IntensityPtr inner, double factor);

  double Rate(const geom::SpaceTimePoint& p) const override {
    return factor_ * inner_->Rate(p);
  }
  double UpperBound(const SpaceTimeWindow& window) const override {
    return factor_ * inner_->UpperBound(window);
  }
  double Integral(const SpaceTimeWindow& window) const override {
    return factor_ * inner_->Integral(window);
  }
  std::string ToString() const override;

 private:
  ScaledIntensity(IntensityPtr inner, double factor)
      : inner_(std::move(inner)), factor_(factor) {}

  IntensityPtr inner_;
  double factor_;
};

/// \brief `a + b`: superposition of two intensities (the intensity of the
/// superposed point process).
class SumIntensity final : public IntensityModel {
 public:
  /// Validating factory; requires both operands non-null.
  static Result<IntensityPtr> Make(IntensityPtr a, IntensityPtr b);

  double Rate(const geom::SpaceTimePoint& p) const override {
    return a_->Rate(p) + b_->Rate(p);
  }
  double UpperBound(const SpaceTimeWindow& window) const override {
    return a_->UpperBound(window) + b_->UpperBound(window);
  }
  double Integral(const SpaceTimeWindow& window) const override {
    return a_->Integral(window) + b_->Integral(window);
  }
  std::string ToString() const override;

 private:
  SumIntensity(IntensityPtr a, IntensityPtr b)
      : a_(std::move(a)), b_(std::move(b)) {}

  IntensityPtr a_;
  IntensityPtr b_;
};

}  // namespace pp
}  // namespace craqr
