#include "pointprocess/estimate.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace craqr {
namespace pp {

namespace {

using Vec4 = std::array<double, 4>;

double Dot(const Vec4& a, const Vec4& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2] + a[3] * b[3];
}

double MaxNorm(const Vec4& a) {
  double m = 0.0;
  for (double v : a) {
    m = std::max(m, std::fabs(v));
  }
  return m;
}

/// Solves the 4x4 system M x = b by Gaussian elimination with partial
/// pivoting. Returns false when M is (numerically) singular.
bool Solve4x4(std::array<Vec4, 4> m, Vec4 b, Vec4* x) {
  constexpr int n = 4;
  for (int col = 0; col < n; ++col) {
    int pivot = col;
    for (int row = col + 1; row < n; ++row) {
      if (std::fabs(m[row][col]) > std::fabs(m[pivot][col])) {
        pivot = row;
      }
    }
    if (std::fabs(m[pivot][col]) < 1e-300) {
      return false;
    }
    std::swap(m[col], m[pivot]);
    std::swap(b[col], b[pivot]);
    for (int row = col + 1; row < n; ++row) {
      const double factor = m[row][col] / m[col][col];
      for (int k = col; k < n; ++k) {
        m[row][k] -= factor * m[col][k];
      }
      b[row] -= factor * b[col];
    }
  }
  for (int row = n - 1; row >= 0; --row) {
    double sum = b[row];
    for (int k = row + 1; k < n; ++k) {
      sum -= m[row][k] * (*x)[k];
    }
    (*x)[row] = sum / m[row][row];
  }
  return true;
}

/// Normalised-coordinate frame for a window: coordinates are centred at the
/// window centroid and scaled by the half-extents, so features lie in
/// [-1, 1] and the window centroid maps to the origin.
struct Frame {
  double tc, xc, yc;
  double st, sx, sy;

  explicit Frame(const SpaceTimeWindow& w)
      : tc((w.t_begin + w.t_end) / 2.0),
        xc((w.space.x_min() + w.space.x_max()) / 2.0),
        yc((w.space.y_min() + w.space.y_max()) / 2.0),
        st(std::max(w.Duration() / 2.0, 1e-12)),
        sx(std::max(w.space.Width() / 2.0, 1e-12)),
        sy(std::max(w.space.Height() / 2.0, 1e-12)) {}

  Vec4 Features(const geom::SpaceTimePoint& p) const {
    return Vec4{1.0, (p.t - tc) / st, (p.x - xc) / sx, (p.y - yc) / sy};
  }

  /// Converts normalised parameters `a` back to raw-coordinate theta.
  LinearIntensity::Theta ToRawTheta(const Vec4& a) const {
    LinearIntensity::Theta theta;
    theta[1] = a[1] / st;
    theta[2] = a[2] / sx;
    theta[3] = a[3] / sy;
    theta[0] = a[0] - theta[1] * tc - theta[2] * xc - theta[3] * yc;
    return theta;
  }
};

/// Exact log-likelihood in the normalised frame:
/// `sum_i log(a . phi_i) - V * a0` (the integral of the linear intensity
/// over the window is Volume * value-at-centroid = V * a0).
/// Returns -inf when the intensity is non-positive at any point.
double LogLikelihood(const std::vector<Vec4>& features, double volume,
                     const Vec4& a) {
  double ll = -volume * a[0];
  for (const auto& phi : features) {
    const double rate = Dot(a, phi);
    if (rate <= 0.0) {
      return -std::numeric_limits<double>::infinity();
    }
    ll += std::log(rate);
  }
  return ll;
}

}  // namespace

Result<LinearFit> FitLinearMle(const std::vector<geom::SpaceTimePoint>& points,
                               const SpaceTimeWindow& window,
                               const LinearMleOptions& options) {
  return FitLinearMle(
      Span<const geom::SpaceTimePoint>(points.data(), points.size()), window,
      options);
}

Result<LinearFit> FitLinearMle(Span<const geom::SpaceTimePoint> points,
                               const SpaceTimeWindow& window,
                               const LinearMleOptions& options) {
  if (!window.IsValid()) {
    return Status::InvalidArgument("window must have positive volume");
  }
  if (points.empty()) {
    return Status::InvalidArgument(
        "linear MLE requires at least one observed point");
  }
  if (options.max_iterations <= 0 || !(options.tolerance > 0.0)) {
    return Status::InvalidArgument("invalid MLE options");
  }

  const Frame frame(window);
  const double volume = window.Volume();
  std::vector<Vec4> features;
  features.reserve(points.size());
  for (const auto& p : points) {
    features.push_back(frame.Features(p));
  }

  // Initialise at the homogeneous MLE: a = (n / V, 0, 0, 0), which has
  // positive intensity at every point.
  Vec4 a{static_cast<double>(points.size()) / volume, 0.0, 0.0, 0.0};
  double ll = LogLikelihood(features, volume, a);

  LinearFit fit;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    fit.iterations = iter + 1;
    // Gradient and Hessian of the exact log-likelihood.
    Vec4 grad{-volume, 0.0, 0.0, 0.0};
    std::array<Vec4, 4> hess{};  // -sum phi phi^T / rate^2 (stored negated
                                 // below when solving).
    for (const auto& phi : features) {
      const double rate = Dot(a, phi);
      const double inv = 1.0 / rate;
      const double inv2 = inv * inv;
      for (int i = 0; i < 4; ++i) {
        grad[i] += phi[i] * inv;
        for (int j = 0; j < 4; ++j) {
          hess[i][j] += phi[i] * phi[j] * inv2;  // positive-definite -H
        }
      }
    }
    if (MaxNorm(grad) < options.tolerance * (1.0 + std::fabs(ll))) {
      fit.converged = true;
      break;
    }
    // Newton ascent direction: delta = (-H)^{-1} grad.
    Vec4 delta{};
    const bool solved = Solve4x4(hess, grad, &delta);
    if (!solved) {
      // Singular Hessian: fall back to a (scaled) gradient step.
      const double scale = 1.0 / std::max(1.0, MaxNorm(grad));
      for (int i = 0; i < 4; ++i) {
        delta[i] = grad[i] * scale;
      }
    }
    // Backtracking line search on the exact objective; rejects steps that
    // make any point's intensity non-positive (LL = -inf).
    double step = 1.0;
    bool improved = false;
    for (int bt = 0; bt < 60; ++bt) {
      Vec4 candidate = a;
      for (int i = 0; i < 4; ++i) {
        candidate[i] += step * delta[i];
      }
      const double candidate_ll = LogLikelihood(features, volume, candidate);
      if (candidate_ll > ll) {
        a = candidate;
        ll = candidate_ll;
        improved = true;
        break;
      }
      step *= 0.5;
    }
    if (!improved) {
      // No ascent possible along the search direction: declare convergence
      // at the current point.
      fit.converged = MaxNorm(grad) < 1e-4 * (1.0 + std::fabs(ll));
      break;
    }
  }

  fit.theta = frame.ToRawTheta(a);
  fit.log_likelihood = ll;
  return fit;
}

// ---------------------------------------------------------------------------
// SgdEstimator

SgdEstimator::SgdEstimator(const SpaceTimeWindow& domain,
                           const Options& options)
    : domain_(domain), options_(options) {
  const Frame frame(domain);
  tc_ = frame.tc;
  xc_ = frame.xc;
  yc_ = frame.yc;
  st_ = frame.st;
  sx_ = frame.sx;
  sy_ = frame.sy;
  // Start from a weakly-informative homogeneous guess: one point per unit
  // volume, flat in space and time.
  a_ = {1.0, 0.0, 0.0, 0.0};
  last_t_ = domain.t_begin;
}

Result<SgdEstimator> SgdEstimator::Make(const SpaceTimeWindow& domain,
                                        const Options& options) {
  if (!domain.IsValid()) {
    return Status::InvalidArgument("SGD domain must have positive volume");
  }
  if (!(options.eta0 > 0.0) || !(options.decay >= 0.0) ||
      !(options.min_rate > 0.0)) {
    return Status::InvalidArgument("invalid SGD options");
  }
  return SgdEstimator(domain, options);
}

std::array<double, 4> SgdEstimator::Features(
    const geom::SpaceTimePoint& p) const {
  const double u =
      options_.use_time_feature ? (p.t - tc_) / st_ : 0.0;
  return {1.0, u, (p.x - xc_) / sx_, (p.y - yc_) / sy_};
}

void SgdEstimator::Update(const geom::SpaceTimePoint& p) {
  const double t = std::max(p.t, last_t_);
  const double dt = t - last_t_;
  last_t_ = t;
  ++updates_;

  const auto phi = Features(p);
  const double rate = std::max(Dot(a_, phi), options_.min_rate);

  // Compensator increment over the elapsed slab [last_t, t] x space:
  // integral of the linear intensity = area * dt * (a0 + a1 * u_mid) where
  // u_mid is the slab's normalised mid-time (spatial terms integrate to 0
  // over the centred rectangle).
  const double u_mid = ((t - dt / 2.0) - tc_) / st_;
  const double dv = domain_.space.Area() * dt;

  Vec4 grad;
  grad[0] = phi[0] / rate - dv;
  grad[1] = options_.use_time_feature ? phi[1] / rate - dv * u_mid : 0.0;
  grad[2] = phi[2] / rate;
  grad[3] = phi[3] / rate;

  const double eta =
      options_.eta0 /
      (1.0 + options_.eta0 * options_.decay * static_cast<double>(updates_));
  for (int i = 0; i < 4; ++i) {
    a_[i] += eta * grad[i];
  }
  // Keep the baseline level positive so RateAt stays usable.
  a_[0] = std::max(a_[0], options_.min_rate);
}

LinearIntensity::Theta SgdEstimator::theta() const {
  LinearIntensity::Theta theta;
  theta[1] = a_[1] / st_;
  theta[2] = a_[2] / sx_;
  theta[3] = a_[3] / sy_;
  theta[0] = a_[0] - theta[1] * tc_ - theta[2] * xc_ - theta[3] * yc_;
  return theta;
}

double SgdEstimator::RateAt(const geom::SpaceTimePoint& p) const {
  return std::max(Dot(a_, Features(p)), options_.min_rate);
}

// ---------------------------------------------------------------------------
// Histogram estimator

Result<IntensityPtr> FitPiecewiseConstant(
    const std::vector<geom::SpaceTimePoint>& points,
    const SpaceTimeWindow& window, std::size_t rows, std::size_t cols) {
  if (!window.IsValid()) {
    return Status::InvalidArgument("window must have positive volume");
  }
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("rows and cols must be >= 1");
  }
  const double cell_w = window.space.Width() / static_cast<double>(cols);
  const double cell_h = window.space.Height() / static_cast<double>(rows);
  const double cell_volume = cell_w * cell_h * window.Duration();
  std::vector<double> rates(rows * cols, 0.0);
  for (const auto& p : points) {
    if (!window.Contains(p)) {
      continue;
    }
    auto col = static_cast<std::size_t>((p.x - window.space.x_min()) / cell_w);
    auto row = static_cast<std::size_t>((p.y - window.space.y_min()) / cell_h);
    col = std::min(col, cols - 1);
    row = std::min(row, rows - 1);
    rates[row * cols + col] += 1.0;
  }
  for (double& r : rates) {
    r /= cell_volume;
  }
  return PiecewiseConstantIntensity::Make(window.space, rows, cols,
                                          std::move(rates));
}

}  // namespace pp
}  // namespace craqr
