#include "pointprocess/intensity.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace craqr {
namespace pp {

std::string SpaceTimeWindow::ToString() const {
  std::ostringstream os;
  os << "[t=" << t_begin << ".." << t_end << ", " << space.ToString() << "]";
  return os.str();
}

namespace {

// Deterministic tensor midpoint quadrature used as the Integral() fallback.
constexpr int kQuadraturePointsPerAxis = 24;

// Evaluates the 8 corners of the window through `f` and returns the max.
template <typename F>
double MaxOverCorners(const SpaceTimeWindow& w, F&& f) {
  const double ts[2] = {w.t_begin, w.t_end};
  const double xs[2] = {w.space.x_min(), w.space.x_max()};
  const double ys[2] = {w.space.y_min(), w.space.y_max()};
  double best = 0.0;
  for (double t : ts) {
    for (double x : xs) {
      for (double y : ys) {
        best = std::max(best, f(geom::SpaceTimePoint{t, x, y}));
      }
    }
  }
  return best;
}

// exp-integral helper: integral of exp(b*u) du over [lo, hi].
double ExpSegmentIntegral(double b, double lo, double hi) {
  if (std::fabs(b) < 1e-12) {
    return hi - lo;
  }
  return (std::exp(b * hi) - std::exp(b * lo)) / b;
}

}  // namespace

double IntensityModel::Integral(const SpaceTimeWindow& window) const {
  if (!window.IsValid()) {
    return 0.0;
  }
  const int n = kQuadraturePointsPerAxis;
  const double dt = window.Duration() / n;
  const double dx = window.space.Width() / n;
  const double dy = window.space.Height() / n;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double t = window.t_begin + (i + 0.5) * dt;
    for (int j = 0; j < n; ++j) {
      const double x = window.space.x_min() + (j + 0.5) * dx;
      for (int k = 0; k < n; ++k) {
        const double y = window.space.y_min() + (k + 0.5) * dy;
        sum += Rate(geom::SpaceTimePoint{t, x, y});
      }
    }
  }
  return sum * dt * dx * dy;
}

// ---------------------------------------------------------------------------
// ConstantIntensity

Result<IntensityPtr> ConstantIntensity::Make(double rate) {
  if (!(rate >= 0.0) || !std::isfinite(rate)) {
    return Status::InvalidArgument("constant intensity rate must be >= 0");
  }
  return IntensityPtr(new ConstantIntensity(rate));
}

std::string ConstantIntensity::ToString() const {
  std::ostringstream os;
  os << "Constant(rate=" << rate_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// LinearIntensity

Result<IntensityPtr> LinearIntensity::Make(const Theta& theta,
                                           double min_rate) {
  for (double v : theta) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("linear intensity theta must be finite");
    }
  }
  if (!(min_rate >= 0.0)) {
    return Status::InvalidArgument("min_rate must be >= 0");
  }
  return IntensityPtr(new LinearIntensity(theta, min_rate));
}

double LinearIntensity::Rate(const geom::SpaceTimePoint& p) const {
  return std::max(Linear(p), min_rate_);
}

double LinearIntensity::UpperBound(const SpaceTimeWindow& window) const {
  // A linear function attains its maximum at a corner of the box.
  return std::max(
      min_rate_,
      MaxOverCorners(window, [this](const geom::SpaceTimePoint& p) {
        return Linear(p);
      }));
}

double LinearIntensity::Integral(const SpaceTimeWindow& window) const {
  if (!window.IsValid()) {
    return 0.0;
  }
  // If the linear form stays above min_rate over the whole box (its minimum
  // is at a corner), the integral is Volume * value-at-centroid.
  const double ts[2] = {window.t_begin, window.t_end};
  const double xs[2] = {window.space.x_min(), window.space.x_max()};
  const double ys[2] = {window.space.y_min(), window.space.y_max()};
  double corner_min = std::numeric_limits<double>::infinity();
  for (double t : ts) {
    for (double x : xs) {
      for (double y : ys) {
        corner_min = std::min(corner_min, Linear(geom::SpaceTimePoint{t, x, y}));
      }
    }
  }
  if (corner_min >= min_rate_) {
    return window.Volume() * Linear(window.Centroid());
  }
  // Clamp active somewhere: fall back to quadrature.
  return IntensityModel::Integral(window);
}

std::string LinearIntensity::ToString() const {
  std::ostringstream os;
  os << "Linear(theta=[" << theta_[0] << "," << theta_[1] << "," << theta_[2]
     << "," << theta_[3] << "], min_rate=" << min_rate_ << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// LogLinearIntensity

Result<IntensityPtr> LogLinearIntensity::Make(const Theta& theta) {
  for (double v : theta) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument(
          "log-linear intensity theta must be finite");
    }
  }
  return IntensityPtr(new LogLinearIntensity(theta));
}

double LogLinearIntensity::Rate(const geom::SpaceTimePoint& p) const {
  return std::exp(theta_[0] + theta_[1] * p.t + theta_[2] * p.x +
                  theta_[3] * p.y);
}

double LogLinearIntensity::UpperBound(const SpaceTimeWindow& window) const {
  // exp of a linear form is maximised at a box corner.
  return MaxOverCorners(window, [this](const geom::SpaceTimePoint& p) {
    return Rate(p);
  });
}

double LogLinearIntensity::Integral(const SpaceTimeWindow& window) const {
  if (!window.IsValid()) {
    return 0.0;
  }
  // Separable closed form.
  return std::exp(theta_[0]) *
         ExpSegmentIntegral(theta_[1], window.t_begin, window.t_end) *
         ExpSegmentIntegral(theta_[2], window.space.x_min(),
                            window.space.x_max()) *
         ExpSegmentIntegral(theta_[3], window.space.y_min(),
                            window.space.y_max());
}

std::string LogLinearIntensity::ToString() const {
  std::ostringstream os;
  os << "LogLinear(theta=[" << theta_[0] << "," << theta_[1] << ","
     << theta_[2] << "," << theta_[3] << "])";
  return os.str();
}

// ---------------------------------------------------------------------------
// GaussianBumpIntensity

Result<IntensityPtr> GaussianBumpIntensity::Make(
    double base_rate, std::vector<GaussianBump> bumps) {
  if (!(base_rate >= 0.0) || !std::isfinite(base_rate)) {
    return Status::InvalidArgument("base_rate must be >= 0");
  }
  for (const auto& bump : bumps) {
    if (!(bump.amplitude >= 0.0) || !(bump.sigma > 0.0)) {
      return Status::InvalidArgument(
          "bumps require amplitude >= 0 and sigma > 0");
    }
  }
  return IntensityPtr(new GaussianBumpIntensity(base_rate, std::move(bumps)));
}

double GaussianBumpIntensity::Rate(const geom::SpaceTimePoint& p) const {
  double rate = base_rate_;
  for (const auto& bump : bumps_) {
    const double cx = bump.x0 + bump.vx * p.t;
    const double cy = bump.y0 + bump.vy * p.t;
    const double dx = p.x - cx;
    const double dy = p.y - cy;
    rate += bump.amplitude *
            std::exp(-(dx * dx + dy * dy) / (2.0 * bump.sigma * bump.sigma));
  }
  return rate;
}

double GaussianBumpIntensity::UpperBound(const SpaceTimeWindow&) const {
  double bound = base_rate_;
  for (const auto& bump : bumps_) {
    bound += bump.amplitude;
  }
  return bound;
}

std::string GaussianBumpIntensity::ToString() const {
  std::ostringstream os;
  os << "GaussianBumps(base=" << base_rate_ << ", bumps=" << bumps_.size()
     << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// PiecewiseConstantIntensity

Result<IntensityPtr> PiecewiseConstantIntensity::Make(
    const geom::Rect& extent, std::size_t rows, std::size_t cols,
    std::vector<double> rates) {
  if (extent.IsEmpty()) {
    return Status::InvalidArgument("extent must have positive area");
  }
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("rows and cols must be >= 1");
  }
  if (rates.size() != rows * cols) {
    return Status::InvalidArgument("rates size must equal rows*cols");
  }
  for (double r : rates) {
    if (!(r >= 0.0) || !std::isfinite(r)) {
      return Status::InvalidArgument("all cell rates must be >= 0");
    }
  }
  return IntensityPtr(
      new PiecewiseConstantIntensity(extent, rows, cols, std::move(rates)));
}

double PiecewiseConstantIntensity::Rate(const geom::SpaceTimePoint& p) const {
  if (!extent_.Contains(p.x, p.y)) {
    return 0.0;
  }
  const double cell_w = extent_.Width() / static_cast<double>(cols_);
  const double cell_h = extent_.Height() / static_cast<double>(rows_);
  auto col = static_cast<std::size_t>((p.x - extent_.x_min()) / cell_w);
  auto row = static_cast<std::size_t>((p.y - extent_.y_min()) / cell_h);
  col = std::min(col, cols_ - 1);
  row = std::min(row, rows_ - 1);
  return rates_[row * cols_ + col];
}

double PiecewiseConstantIntensity::UpperBound(const SpaceTimeWindow&) const {
  return *std::max_element(rates_.begin(), rates_.end());
}

double PiecewiseConstantIntensity::Integral(
    const SpaceTimeWindow& window) const {
  if (!window.IsValid()) {
    return 0.0;
  }
  const double cell_w = extent_.Width() / static_cast<double>(cols_);
  const double cell_h = extent_.Height() / static_cast<double>(rows_);
  double spatial = 0.0;
  for (std::size_t row = 0; row < rows_; ++row) {
    for (std::size_t col = 0; col < cols_; ++col) {
      const double x0 = extent_.x_min() + static_cast<double>(col) * cell_w;
      const double y0 = extent_.y_min() + static_cast<double>(row) * cell_h;
      const geom::Rect cell(x0, y0, x0 + cell_w, y0 + cell_h);
      spatial += rates_[row * cols_ + col] * cell.OverlapArea(window.space);
    }
  }
  return spatial * window.Duration();
}

std::string PiecewiseConstantIntensity::ToString() const {
  std::ostringstream os;
  os << "PiecewiseConstant(" << rows_ << "x" << cols_ << " over "
     << extent_.ToString() << ")";
  return os.str();
}

// ---------------------------------------------------------------------------
// Combinators

Result<IntensityPtr> ScaledIntensity::Make(IntensityPtr inner, double factor) {
  if (inner == nullptr) {
    return Status::InvalidArgument("scaled intensity requires a model");
  }
  if (!(factor >= 0.0) || !std::isfinite(factor)) {
    return Status::InvalidArgument("scale factor must be >= 0");
  }
  return IntensityPtr(new ScaledIntensity(std::move(inner), factor));
}

std::string ScaledIntensity::ToString() const {
  std::ostringstream os;
  os << "Scaled(" << factor_ << " * " << inner_->ToString() << ")";
  return os.str();
}

Result<IntensityPtr> SumIntensity::Make(IntensityPtr a, IntensityPtr b) {
  if (a == nullptr || b == nullptr) {
    return Status::InvalidArgument("sum intensity requires two models");
  }
  return IntensityPtr(new SumIntensity(std::move(a), std::move(b)));
}

std::string SumIntensity::ToString() const {
  std::ostringstream os;
  os << "Sum(" << a_->ToString() << " + " << b_->ToString() << ")";
  return os.str();
}

}  // namespace pp
}  // namespace craqr
